//! Campaign execution glue: plugs the engine-agnostic `perple-campaign`
//! crate into this crate's conversion pipeline and resilient suite pool.
//!
//! The campaign crate owns the store, cache, fingerprints, and regression
//! gate but never touches a simulator; this module supplies the missing
//! half:
//!
//! * spec → [`ExperimentConfig`] (fault plans parsed through the shared
//!   [`parse_fault_plan`], so malformed `inject =` lines are
//!   [`PerpleError::Config`], never panics);
//! * spec expansion (`convertible` magic entry, test-name validation) into
//!   fingerprinted [`CampaignItem`]s;
//! * the executor: cache misses run as `test#seed`-named items on
//!   [`run_suite_resilient`] via [`audit_one`], so campaigns inherit panic
//!   isolation, watchdog budgets, deterministic retries, and quarantine;
//! * conversion-artifact capture into the `conv/` cache namespace.
//!
//! ## Seeds and fingerprints
//!
//! An item named `sb#2` runs under
//! `attempt_seed(derive_seed(BASE, "sb#2", "campaign"), 0)` — a pure
//! function of the test name and the spec-level seed, independent of the
//! process, item order, and worker count. The item [`fingerprint`] feeds
//! every behavioural input (litmus source text, conversion pipeline
//! version, the derived-seed simulator descriptor including fault plan,
//! iterations, frame cap, watchdog) so cache hits are exactly the runs
//! whose outcome is already known. See `DESIGN.md`, "Cache keys and
//! invalidation".

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use perple_analysis::jsonout::Json;
use perple_campaign::{
    git_describe, resume_campaign_observed, run_campaign_observed, ArtifactCache, CampaignItem,
    CampaignSpec, ExecOutcome, Fingerprint, Hasher, LintSummary, OutcomeRecord, RunMeta, RunStore,
    RunSummary, StageWallMs, StoreIo,
};
use perple_convert::artifact::ArtifactBundle;
use perple_lint::{lint_test, LintConfig, LintReport, Severity};
use perple_model::{printer, suite, LitmusTest};

use crate::error::{parse_fault_plan, PerpleError};
use crate::{classify, Conversion};

use super::resilient::{audit_one, run_suite_resilient, ItemStatus};
use super::{derive_seed, ExperimentConfig};

/// Fixed base for the per-item seed derivation (the spec's `seeds` axis is
/// the user-visible seed; this only decorrelates item names).
const CAMPAIGN_BASE_SEED: u64 = 0x9E37;

/// Tool tag in the seed derivation (see `derive_seed`).
const CAMPAIGN_TAG: &str = "campaign";

/// Version tag of the conversion pipeline mixed into fingerprints: bump
/// when the Converter's output changes meaning, orphaning cached
/// conversions and results produced by the old pipeline.
pub const CONVERSION_VERSION: &str = "convert-v1";

/// Display name of one item (also the seed-derivation key).
fn item_name(test: &str, seed: u64) -> String {
    format!("{test}#{seed}")
}

/// Builds the [`ExperimentConfig`] a spec describes.
///
/// # Errors
/// [`PerpleError::Config`] for malformed `inject =` fault plans or spec
/// values the validating builder rejects (zero iterations/timeout/cap).
pub fn campaign_config(spec: &CampaignSpec) -> Result<ExperimentConfig, PerpleError> {
    let plan = match &spec.inject {
        Some(s) => parse_fault_plan(s)?,
        None => perple_sim::FaultPlan::none(),
    };
    let counter = match &spec.counter {
        Some(s) => perple_analysis::count::CounterKind::parse(s)
            .ok_or_else(|| PerpleError::Config(format!("unknown counter backend {s:?}")))?,
        None => perple_analysis::count::CounterKind::Rf,
    };
    let mut builder = ExperimentConfig::builder()
        .iterations(spec.iterations)
        .seed(CAMPAIGN_BASE_SEED)
        .timeout_ms(spec.timeout_ms)
        .retries(spec.retries)
        .fault_plan(plan)
        .counter(counter)
        .exhaustive_frame_cap(spec.frame_cap);
    if spec.workers > 0 {
        builder = builder.workers(spec.workers);
    }
    builder.build()
}

/// Expands the spec's test list: `convertible` becomes the whole Table II
/// convertible suite, names are validated and deduplicated in order.
///
/// # Errors
/// [`PerpleError::Config`] for unknown or non-convertible test names.
pub fn expand_tests(spec: &CampaignSpec) -> Result<Vec<LitmusTest>, PerpleError> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for name in &spec.tests {
        if name == "convertible" {
            for t in suite::convertible() {
                if seen.insert(t.name().to_owned()) {
                    out.push(t);
                }
            }
            continue;
        }
        let t = suite::by_name(name)
            .ok_or_else(|| PerpleError::Config(format!("unknown suite test {name:?}")))?;
        if !perple_convert::is_convertible(&t) {
            return Err(PerpleError::Config(format!(
                "{name:?} is not convertible to a perpetual test"
            )));
        }
        if seen.insert(t.name().to_owned()) {
            out.push(t);
        }
    }
    Ok(out)
}

/// Fingerprint of one item's complete behavioural inputs (the result-cache
/// key).
pub fn item_fingerprint(test: &LitmusTest, cfg: &ExperimentConfig, seed: u64) -> Fingerprint {
    let runner_seed = derive_seed(cfg.seed, &item_name(test.name(), seed), CAMPAIGN_TAG);
    let mut h = Hasher::new();
    h.field("litmus", &printer::print(test))
        .field("pipeline", CONVERSION_VERSION)
        .field("sim", &cfg.sim_config(runner_seed).cache_descriptor())
        .field("counter", cfg.counter.name())
        .field_u64("iterations", cfg.iterations)
        .field_opt_u64("frame-cap", cfg.exhaustive_frame_cap)
        .field_opt_u64("timeout-ms", cfg.timeout_ms)
        .field_u64("item-seed", seed);
    h.finish()
}

/// Fingerprint of a test's conversion inputs alone (the conv-cache key):
/// source bytes and pipeline version, nothing run-specific.
pub fn conv_fingerprint(test: &LitmusTest) -> Fingerprint {
    let mut h = Hasher::new();
    h.field("litmus", &printer::print(test))
        .field("pipeline", CONVERSION_VERSION);
    h.finish()
}

/// Expands a spec into fingerprinted items (tests × seeds, spec order)
/// paired with their tests.
///
/// # Errors
/// As for [`expand_tests`] / [`campaign_config`].
pub fn expand_items(
    spec: &CampaignSpec,
) -> Result<(ExperimentConfig, Vec<(LitmusTest, CampaignItem)>), PerpleError> {
    let cfg = campaign_config(spec)?;
    let tests = expand_tests(spec)?;
    let mut out = Vec::with_capacity(tests.len() * spec.seeds.len());
    for t in &tests {
        for &seed in &spec.seeds {
            let item = CampaignItem {
                test: t.name().to_owned(),
                seed,
                fingerprint: item_fingerprint(t, &cfg, seed),
            };
            out.push((t.clone(), item));
        }
    }
    Ok((cfg, out))
}

/// Pre-run lint gate: lints every distinct test of the spec at the spec's
/// iteration count and returns the report plus severity totals for the
/// manifest.
pub fn lint_spec_tests(spec: &CampaignSpec, tests: &[LitmusTest]) -> (LintReport, LintSummary) {
    let cfg = LintConfig {
        iterations: spec.iterations,
        ..LintConfig::default()
    };
    let reports = tests.iter().map(|t| lint_test(t, &cfg)).collect();
    let report = LintReport::new(cfg, reports);
    let summary = LintSummary {
        errors: report.count(Severity::Error) as u64,
        warnings: report.count(Severity::Warning) as u64,
        notes: report.count(Severity::Note) as u64,
    };
    (report, summary)
}

/// Runs one campaign spec against the store at `store_root`: lint gate,
/// cache partition, resilient execution of the misses, artifact capture,
/// run persistence.
///
/// `allow_lints` skips the refusal (the lint totals still land in the
/// manifest), mirroring the CLI's `--allow-lints`.
///
/// # Errors
/// Config errors from the spec, error-severity lint findings (unless
/// `allow_lints`), or store/cache I/O failures (as strings, ready for the
/// CLI).
pub fn run_spec(
    spec: &CampaignSpec,
    store_root: &Path,
    allow_lints: bool,
) -> Result<RunSummary, String> {
    run_spec_with_io(spec, store_root, allow_lints, StoreIo::unplanned())
}

/// [`run_spec`] with every store/cache/journal write routed through the
/// given IO shim — how `--crash PLAN` and the kill-and-resume CI step
/// exercise the durability layer against the real pipeline.
///
/// # Errors
/// As for [`run_spec`], plus injected crashes from the shim's plan.
pub fn run_spec_with_io(
    spec: &CampaignSpec,
    store_root: &Path,
    allow_lints: bool,
    io: StoreIo,
) -> Result<RunSummary, String> {
    run_spec_observed(spec, store_root, allow_lints, io, |_, _| {})
}

/// [`run_spec_with_io`] with the engine's item observer: `on_item(slot,
/// record)` fires exactly once per expanded item as soon as its outcome
/// is final (hits in slot order during the partition, executed items as
/// their journal frames land, `None` for lost items) — the hook
/// `perple serve` streams records through.
///
/// # Errors
/// As for [`run_spec_with_io`].
pub fn run_spec_observed(
    spec: &CampaignSpec,
    store_root: &Path,
    allow_lints: bool,
    io: StoreIo,
    on_item: impl FnMut(usize, Option<&OutcomeRecord>),
) -> Result<RunSummary, String> {
    let (cfg, expanded) = expand_items(spec).map_err(|e| e.to_string())?;
    let tests_by_name: HashMap<String, LitmusTest> = expanded
        .iter()
        .map(|(t, _)| (t.name().to_owned(), t.clone()))
        .collect();

    let mut distinct: Vec<LitmusTest> = tests_by_name.values().cloned().collect();
    distinct.sort_by(|a, b| a.name().cmp(b.name()));
    let (lint_report, lint_summary) = lint_spec_tests(spec, &distinct);
    if lint_report.gates(false) && !allow_lints {
        let mut msg = String::from(
            "refusing to run: spec tests carry error-severity lints \
             (pass --allow-lints to override)\n",
        );
        msg.push_str(&lint_report.render_text());
        return Err(msg);
    }

    let store = RunStore::open_with(store_root, io.clone()).map_err(|e| e.to_string())?;
    let cache = ArtifactCache::open_with(store_root, io).map_err(|e| e.to_string())?;
    let items: Vec<CampaignItem> = expanded.into_iter().map(|(_, i)| i).collect();

    let meta = RunMeta {
        created_unix_ms: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        git: git_describe(),
        lint: Some(lint_summary),
    };

    run_campaign_observed(
        &store,
        &cache,
        spec,
        &items,
        &meta,
        spec.durability(),
        |batch| execute_batch(batch, &tests_by_name, &cfg, &cache),
        on_item,
    )
    .map_err(|e| e.to_string())
}

/// Resumes the interrupted run `id`: rebuilds the spec, items, and
/// metadata from the run's own `pending.json` marker (no original
/// invocation needed), replays the journal, and executes only the
/// remainder. The finished `items.json` is bit-identical to what an
/// uninterrupted run would have produced.
///
/// # Errors
/// Not-resumable / corrupt-marker errors from the store, spec re-parse
/// errors, or anything [`run_spec`] can fail with (as strings, ready for
/// the CLI).
pub fn resume_spec(store_root: &Path, id: &str) -> Result<RunSummary, String> {
    resume_spec_observed(store_root, id, |_, _| {})
}

/// [`resume_spec`] with the item observer of [`run_spec_observed`]
/// (journal-replayed and cache-served items are observed during the
/// partition, executed ones as they complete).
///
/// # Errors
/// As for [`resume_spec`].
pub fn resume_spec_observed(
    store_root: &Path,
    id: &str,
    on_item: impl FnMut(usize, Option<&OutcomeRecord>),
) -> Result<RunSummary, String> {
    let store = RunStore::open(store_root).map_err(|e| e.to_string())?;
    let cache = ArtifactCache::open(store_root).map_err(|e| e.to_string())?;
    let pending = store.load_pending(id).map_err(|e| e.to_string())?;
    let spec_text = pending
        .get("spec")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("run {id:?}: pending marker has no spec"))?;
    let spec = CampaignSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let meta = RunMeta::from_pending_json(&pending).map_err(|e| e.to_string())?;

    let (cfg, expanded) = expand_items(&spec).map_err(|e| e.to_string())?;
    let tests_by_name: HashMap<String, LitmusTest> = expanded
        .iter()
        .map(|(t, _)| (t.name().to_owned(), t.clone()))
        .collect();
    let items: Vec<CampaignItem> = expanded.into_iter().map(|(_, i)| i).collect();

    resume_campaign_observed(
        &store,
        &cache,
        id,
        &spec,
        &items,
        &meta,
        spec.durability(),
        |batch| execute_batch(batch, &tests_by_name, &cfg, &cache),
        on_item,
    )
    .map_err(|e| e.to_string())
}

/// Executes a batch of cache misses on the resilient suite pool and shapes
/// the results for the engine.
fn execute_batch(
    batch: &[CampaignItem],
    tests_by_name: &HashMap<String, LitmusTest>,
    cfg: &ExperimentConfig,
    cache: &ArtifactCache,
) -> Vec<Option<ExecOutcome>> {
    // Capture conversion artifacts for every distinct test in the batch
    // (write-if-absent; convert failures are left to the executor, which
    // reports them per item).
    let mut captured = HashSet::new();
    for item in batch {
        let Some(test) = tests_by_name.get(&item.test) else {
            continue;
        };
        if !captured.insert(item.test.clone()) {
            continue;
        }
        let fp = conv_fingerprint(test);
        if cache.load_conv(fp).is_none() {
            if let Ok(conv) = Conversion::convert(test) {
                let bundle = ArtifactBundle::from_conversion(&conv);
                let _ = cache.store_conv(fp, &bundle.render_text());
            }
        }
    }

    // Forbidden-ness per distinct test, derived once (classification is a
    // pure function of the test, so hits never need it).
    let forbidden: HashMap<&str, bool> = tests_by_name
        .iter()
        .map(|(name, t)| (name.as_str(), !classify(t).tso_allowed))
        .collect();

    let pairs: Vec<(LitmusTest, &CampaignItem)> = batch
        .iter()
        .map(|i| {
            let t = tests_by_name
                .get(&i.test)
                .cloned()
                .expect("expand_items built both sides from the same spec");
            (t, i)
        })
        .collect();

    let report = run_suite_resilient(
        &pairs,
        cfg,
        |(_, i)| item_name(&i.test, i.seed),
        CAMPAIGN_TAG,
        |(t, _), seed| audit_one(t, cfg, seed),
    );

    report
        .results
        .iter()
        .zip(&report.items)
        .zip(batch)
        .map(|((row, disposition), item)| {
            let is_forbidden = forbidden.get(item.test.as_str()).copied().unwrap_or(false);
            let outcome = match row {
                Some(r) => ExecOutcome {
                    record: OutcomeRecord {
                        test: item.test.clone(),
                        seed: item.seed,
                        fingerprint: item.fingerprint.hex(),
                        forbidden: is_forbidden,
                        heuristic: r.heuristic,
                        exhaustive: r.exhaustive,
                        degraded: r.degraded,
                        iterations: r.iterations,
                        run_complete: r.run_complete,
                        faults: r.faults,
                        digest: r.digest,
                        quarantined: false,
                        fault_kind: None,
                    },
                    // Recovered items ran under perturbed retry seeds, so
                    // their counts are not a function of the fingerprint.
                    cacheable: disposition.status == ItemStatus::Ok,
                    wall: StageWallMs {
                        convert_ms: r.timings.convert.as_millis() as u64,
                        run_ms: r.timings.run.as_millis() as u64,
                        count_ms: r.timings.count.as_millis() as u64,
                    },
                },
                None => ExecOutcome {
                    record: OutcomeRecord {
                        test: item.test.clone(),
                        seed: item.seed,
                        fingerprint: item.fingerprint.hex(),
                        forbidden: is_forbidden,
                        heuristic: 0,
                        exhaustive: 0,
                        degraded: false,
                        iterations: 0,
                        run_complete: false,
                        faults: 0,
                        digest: 0,
                        quarantined: true,
                        fault_kind: disposition.fault_kind().map(str::to_owned),
                    },
                    cacheable: false,
                    wall: StageWallMs::default(),
                },
            };
            Some(outcome)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perple-campaign-glue-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec(name: &str) -> CampaignSpec {
        let mut spec = CampaignSpec::named(name);
        spec.tests = vec!["sb".to_owned(), "mp".to_owned()];
        spec.seeds = vec![1, 2];
        spec.iterations = 150;
        spec.workers = 2;
        spec
    }

    #[test]
    fn fingerprints_are_pure_functions_of_the_spec() {
        let spec = tiny_spec("fp");
        let (_, a) = expand_items(&spec).unwrap();
        let (_, b) = expand_items(&spec).unwrap();
        assert_eq!(
            a.iter().map(|(_, i)| i.fingerprint).collect::<Vec<_>>(),
            b.iter().map(|(_, i)| i.fingerprint).collect::<Vec<_>>()
        );
        // And every behavioural knob changes them.
        let mut faster = tiny_spec("fp");
        faster.iterations = 151;
        let (_, c) = expand_items(&faster).unwrap();
        assert_ne!(
            a[0].1.fingerprint, c[0].1.fingerprint,
            "iterations are behavioural"
        );
        let mut injected = tiny_spec("fp");
        injected.inject = Some("corrupt@t0:0..100".to_owned());
        let (_, d) = expand_items(&injected).unwrap();
        assert_ne!(
            a[0].1.fingerprint, d[0].1.fingerprint,
            "fault plans are behavioural"
        );
        let mut exact = tiny_spec("fp");
        exact.counter = Some("exhaustive".to_owned());
        let (_, f) = expand_items(&exact).unwrap();
        assert_ne!(
            a[0].1.fingerprint, f[0].1.fingerprint,
            "the counter backend partitions the cache"
        );
        // Workers are NOT behavioural: counts are bit-identical per seed.
        let mut wide = tiny_spec("fp");
        wide.workers = 8;
        let (_, e) = expand_items(&wide).unwrap();
        assert_eq!(
            a[0].1.fingerprint, e[0].1.fingerprint,
            "worker count must not split the cache"
        );
    }

    #[test]
    fn expansion_rejects_unknown_and_nonconvertible_tests() {
        let mut spec = tiny_spec("bad");
        spec.tests = vec!["no-such-test".to_owned()];
        assert!(matches!(expand_items(&spec), Err(PerpleError::Config(_))));
        spec.tests = vec!["2+2w".to_owned()]; // real but non-convertible
        assert!(matches!(expand_items(&spec), Err(PerpleError::Config(_))));
    }

    #[test]
    fn convertible_magic_expands_and_dedupes() {
        let mut spec = tiny_spec("magic");
        spec.tests = vec!["sb".to_owned(), "convertible".to_owned(), "sb".to_owned()];
        let tests = expand_tests(&spec).unwrap();
        assert_eq!(tests.len(), suite::convertible().len());
        assert_eq!(tests[0].name(), "sb", "explicit order wins");
    }

    #[test]
    fn unknown_counter_backend_is_a_config_error() {
        let mut spec = tiny_spec("ctr");
        spec.counter = Some("turbo".to_owned());
        let err = campaign_config(&spec).unwrap_err();
        assert!(matches!(err, PerpleError::Config(_)), "{err}");
    }

    #[test]
    fn malformed_inject_is_a_config_error() {
        let mut spec = tiny_spec("inj");
        spec.inject = Some("bad@".to_owned());
        let err = campaign_config(&spec).unwrap_err();
        assert!(matches!(err, PerpleError::Config(_)), "{err}");
    }

    #[test]
    fn warm_rerun_does_zero_pipeline_work() {
        let root = tmp_root("warm");
        let spec = tiny_spec("warm");
        let cold = run_spec(&spec, &root, false).unwrap();
        assert_eq!((cold.hits, cold.executed), (0, 4));
        assert_eq!(
            cold.violations, 0,
            "TSO machine never shows forbidden outcomes"
        );

        let warm = run_spec(&spec, &root, false).unwrap();
        assert_eq!(
            (warm.hits, warm.executed),
            (4, 0),
            "warm run must be all hits"
        );
        assert_eq!(warm.lost, 0);

        // The stored runs carry identical deterministic records...
        let store = RunStore::open(&root).unwrap();
        assert_eq!(
            store.load_items(&cold.id).unwrap(),
            store.load_items(&warm.id).unwrap()
        );
        // ...and the warm manifest proves no convert/run/count happened.
        use perple_analysis::jsonout::Json;
        let sw = store.load_manifest(&warm.id).unwrap();
        let sw = sw.get("stage_wall_ms").unwrap();
        for stage in ["convert_ms", "run_ms", "count_ms"] {
            assert_eq!(sw.get(stage).and_then(Json::as_u64), Some(0), "{stage}");
        }
        // Conversion artifacts were captured once per distinct test.
        let cache = ArtifactCache::open(&root).unwrap();
        assert_eq!(cache.stats().1, 2, "sb and mp artifact bundles");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn injected_fault_campaign_compares_as_regression() {
        let root = tmp_root("gate");
        let spec = tiny_spec("gate");
        let base = run_spec(&spec, &root, false).unwrap();

        let mut faulty = tiny_spec("gate");
        faulty.inject = Some("corrupt@t0:0..150".to_owned());
        let bad = run_spec(&faulty, &root, false).unwrap();
        assert_eq!(
            bad.hits, 0,
            "different fault plan means different fingerprints"
        );

        let store = RunStore::open(&root).unwrap();
        let report = perple_campaign::compare_runs(
            &store,
            &base.id,
            &bad.id,
            &perple_campaign::CompareConfig::default(),
        )
        .unwrap();
        assert!(report.is_regression(), "{}", report.render_text());
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.kind == perple_campaign::RegressionKind::NewFaults),
            "{}",
            report.render_text()
        );

        // And a run compared against itself is clean.
        let self_cmp = perple_campaign::compare_runs(
            &store,
            &base.id,
            &base.id,
            &perple_campaign::CompareConfig::default(),
        )
        .unwrap();
        assert!(!self_cmp.is_regression(), "{}", self_cmp.render_text());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn lint_gate_refuses_specs_with_error_severity_findings() {
        // n5 stores k=2 sequences, so an absurd iteration count makes L001
        // (sequence-overflow) fire even at the default 64-bit value width.
        // The gate must refuse BEFORE any execution — actually running this
        // spec would allocate N-sized buffers.
        let root = tmp_root("lintgate");
        let mut spec = tiny_spec("lintgate");
        spec.tests = vec!["n5".to_owned()];
        spec.iterations = u64::MAX;
        let err = run_spec(&spec, &root, false).unwrap_err();
        assert!(err.contains("L001"), "{err}");
        assert!(err.contains("--allow-lints"), "{err}");
        assert!(!root.exists(), "gate refusal must not create the run store");
    }

    #[test]
    fn allow_lints_and_clean_specs_record_lint_totals_in_the_manifest() {
        // allow_lints on a clean spec changes nothing except that the gate
        // cannot fire; the manifest still records the (all-clear) totals.
        let root = tmp_root("lintok");
        let spec = tiny_spec("lintok");
        let run = run_spec(&spec, &root, true).unwrap();
        use perple_analysis::jsonout::Json;
        let store = RunStore::open(&root).unwrap();
        let manifest = store.load_manifest(&run.id).unwrap();
        let lint = manifest.get("lint").expect("manifest lint summary");
        assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0));
        assert_eq!(lint.get("warnings").and_then(Json::as_u64), Some(0));
        let _ = fs::remove_dir_all(root);
    }
}
