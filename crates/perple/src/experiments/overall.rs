//! §VII-G: overall impact on the full 88-test suite.
//!
//! Strategy comparison at a fixed iteration count:
//!
//! * **baseline**: litmus7 `user` mode for all 88 tests;
//! * **hybrid (PerpLE)**: PerpLE-heuristic for the 34 convertible tests,
//!   litmus7 `user` for the 54 non-convertible ones.
//!
//! The paper reports the hybrid being 1.47x faster overall plus a >20000x
//! mean relative detection-rate improvement on the convertible tests with
//! allowed targets.

use std::fmt::Write as _;

use perple_analysis::metrics::relative_improvement;
use perple_analysis::stats::arithmetic_mean;
use perple_harness::baseline::SyncMode;
use perple_model::suite;

use super::{baseline_detection, perple_detection, pool, ExperimentConfig};
use crate::Conversion;

/// The overall-impact summary.
#[derive(Debug, Clone, PartialEq)]
pub struct OverallImpact {
    /// Total model cycles: litmus7 `user` across all 88 tests.
    pub baseline_cycles: u64,
    /// Total model cycles: PerpLE for convertible + litmus7 for the rest.
    pub hybrid_cycles: u64,
    /// `baseline_cycles / hybrid_cycles` (paper: 1.47x).
    pub speedup: f64,
    /// Mean relative detection-rate improvement on allowed convertible
    /// tests (paper: >20000x); `None` if no baseline comparisons exist.
    pub detection_improvement: Option<f64>,
    /// Number of convertible tests (34).
    pub convertible: usize,
    /// Number of non-convertible tests (54).
    pub non_convertible: usize,
}

/// Per-test measurement, computed concurrently on the suite pool and
/// reduced in suite order (so `improvements` is deterministic).
struct TestImpact {
    baseline_cycles: u64,
    hybrid_cycles: u64,
    convertible: bool,
    improvement: Option<f64>,
}

/// Runs the overall-impact experiment. The 88 suite tests run concurrently
/// on `cfg.parallelism.suite_workers` threads; each test's seeds derive
/// from its name, so the summary matches the serial run exactly.
pub fn overall(cfg: &ExperimentConfig) -> OverallImpact {
    let allowed: Vec<&str> = suite::TABLE_II
        .iter()
        .filter(|e| e.allowed)
        .map(|e| e.name)
        .collect();

    let tests = suite::full();
    let impacts = pool::map_parallel(&tests, cfg.parallelism.suite_workers, |_, test| {
        let user = baseline_detection(test, SyncMode::User, cfg);
        match Conversion::convert(test) {
            Ok(conv) => {
                let perple = perple_detection(test, &conv, cfg, true);
                let improvement = if allowed.contains(&test.name()) {
                    relative_improvement(perple, user)
                } else {
                    None
                };
                TestImpact {
                    baseline_cycles: user.time.total(),
                    hybrid_cycles: perple.time.total(),
                    convertible: true,
                    improvement,
                }
            }
            Err(_) => {
                // Non-convertible: the user is notified and litmus7 keeps
                // running the test (§VII-G).
                TestImpact {
                    baseline_cycles: user.time.total(),
                    hybrid_cycles: user.time.total(),
                    convertible: false,
                    improvement: None,
                }
            }
        }
    });

    let mut baseline_cycles = 0u64;
    let mut hybrid_cycles = 0u64;
    let mut convertible = 0usize;
    let mut non_convertible = 0usize;
    let mut improvements = Vec::new();
    for i in impacts {
        baseline_cycles += i.baseline_cycles;
        hybrid_cycles += i.hybrid_cycles;
        if i.convertible {
            convertible += 1;
        } else {
            non_convertible += 1;
        }
        improvements.extend(i.improvement);
    }

    OverallImpact {
        baseline_cycles,
        hybrid_cycles,
        speedup: baseline_cycles as f64 / hybrid_cycles.max(1) as f64,
        detection_improvement: arithmetic_mean(&improvements),
        convertible,
        non_convertible,
    }
}

/// Renders the summary.
pub fn render(impact: &OverallImpact, cfg: &ExperimentConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Overall impact (§VII-G), {} iterations per test:",
        cfg.iterations
    );
    let _ = writeln!(
        s,
        "  suite: {} tests = {} convertible + {} non-convertible",
        impact.convertible + impact.non_convertible,
        impact.convertible,
        impact.non_convertible
    );
    let _ = writeln!(
        s,
        "  litmus7-user everywhere : {:>14} cycles",
        impact.baseline_cycles
    );
    let _ = writeln!(
        s,
        "  PerpLE hybrid strategy  : {:>14} cycles",
        impact.hybrid_cycles
    );
    let _ = writeln!(
        s,
        "  overall speedup         : {:>11.2}x   (paper: 1.47x)",
        impact.speedup
    );
    match impact.detection_improvement {
        Some(v) => {
            let _ = writeln!(
                s,
                "  mean detection-rate improvement on allowed convertible tests: {v:.0}x (paper: >20000x)"
            );
        }
        None => {
            let _ = writeln!(
                s,
                "  detection-rate improvement: baseline found no targets at this scale"
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_strategy_is_faster_overall() {
        let cfg = ExperimentConfig::default()
            .with_iterations(300)
            .with_seed(0x77);
        let impact = overall(&cfg);
        assert_eq!(impact.convertible, 34);
        assert_eq!(impact.non_convertible, 54);
        assert!(
            impact.speedup > 1.0,
            "hybrid should beat all-litmus7 (got {:.2}x)",
            impact.speedup
        );
        if let Some(v) = impact.detection_improvement {
            assert!(v > 1.0);
        }
    }

    #[test]
    fn pool_width_does_not_change_the_summary() {
        let base = ExperimentConfig::default()
            .with_iterations(120)
            .with_seed(0x79);
        let serial = overall(&base.clone().with_workers(1));
        let par = overall(&base.with_workers(4));
        assert_eq!(serial, par);
    }

    #[test]
    fn render_reports_the_split() {
        let cfg = ExperimentConfig::default()
            .with_iterations(100)
            .with_seed(0x78);
        let text = render(&overall(&cfg), &cfg);
        assert!(text.contains("34 convertible"));
        assert!(text.contains("54 non-convertible"));
        assert!(text.contains("1.47x"));
    }
}
