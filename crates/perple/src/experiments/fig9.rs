//! Figure 9: target-outcome occurrences per suite test — PerpLE with both
//! counters vs litmus7 in all five synchronization modes.

use std::fmt::Write as _;
use std::time::Instant;

use perple_analysis::metrics::StageTimings;
use perple_harness::baseline::SyncMode;
use perple_model::suite;

use super::{baseline_detection, pool, ExperimentConfig};
use crate::Conversion;

/// One test's occurrence counts across tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig9Row {
    /// Test name.
    pub name: String,
    /// True if x86-TSO allows the target (forbidden tests carry the red X
    /// of the figure and must read 0 everywhere).
    pub allowed: bool,
    /// PerpLE with the exhaustive counter.
    pub perple_exhaustive: u64,
    /// True if the exhaustive scan was frame-capped (`T_L = 3` tests at
    /// large `N`), making its count a lower bound on a prefix of frames.
    pub exhaustive_truncated: bool,
    /// PerpLE with the heuristic counter.
    pub perple_heuristic: u64,
    /// litmus7 occurrences per mode, in [`SyncMode::ALL`] order.
    pub litmus7: [u64; 5],
    /// Wall-clock stage timings of the PerpLE pipeline on this test.
    pub timings: StageTimings,
}

/// Regenerates Figure 9's data for the whole convertible suite. Suite
/// tests run concurrently on `cfg.parallelism.suite_workers` threads; each
/// test derives its own seed, so results match the serial run exactly.
pub fn fig9(cfg: &ExperimentConfig) -> Vec<Fig9Row> {
    let tests = suite::convertible();
    let entries: Vec<_> = tests.iter().zip(suite::TABLE_II).collect();
    pool::map_parallel(
        &entries,
        cfg.parallelism.suite_workers,
        |_, (test, entry)| {
            let t_convert = Instant::now();
            // Invariant: `suite::convertible()` pre-filters by
            // `is_convertible`, so conversion cannot fail here.
            let conv = Conversion::convert(test).expect("suite test converts");
            let convert_wall = t_convert.elapsed();
            let (heur, exh, mut timings) = super::perple_detection_both_timed(test, &conv, cfg);
            timings.add_convert(convert_wall);
            let (perple_heuristic, perple_exhaustive) = (heur.occurrences, exh.occurrences);
            let total_frames = (cfg.iterations as u128).pow(test.load_thread_count() as u32);
            let exhaustive_truncated = cfg
                .exhaustive_frame_cap
                .is_some_and(|cap| (cap as u128) < total_frames);
            let mut litmus7 = [0u64; 5];
            for (i, mode) in SyncMode::ALL.iter().enumerate() {
                litmus7[i] = baseline_detection(test, *mode, cfg).occurrences;
            }
            Fig9Row {
                name: test.name().to_owned(),
                allowed: entry.allowed,
                perple_exhaustive,
                exhaustive_truncated,
                perple_heuristic,
                litmus7,
                timings,
            }
        },
    )
}

/// Renders the figure's data as a table.
pub fn render(rows: &[Fig9Row], cfg: &ExperimentConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 9: target outcome occurrences ({} iterations)",
        cfg.iterations
    );
    let _ = writeln!(
        s,
        "{:<16} {:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "test",
        "tso",
        "perple-exh",
        "perple-heur",
        "user",
        "userfence",
        "pthread",
        "timebase",
        "none"
    );
    for r in rows {
        let exh = if r.exhaustive_truncated {
            format!("{}cap", r.perple_exhaustive)
        } else {
            r.perple_exhaustive.to_string()
        };
        let _ = writeln!(
            s,
            "{:<16} {:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            r.name,
            if r.allowed { "ok" } else { "X" },
            exh,
            r.perple_heuristic,
            r.litmus7[0],
            r.litmus7[1],
            r.litmus7[2],
            r.litmus7[3],
            r.litmus7[4],
        );
    }
    let total: StageTimings = rows.iter().fold(StageTimings::default(), |mut acc, r| {
        acc.accumulate(&r.timings);
        acc
    });
    let _ = writeln!(
        s,
        "stage wall time (sum over tests): convert {:?}, run {:?}, count {:?} ({} counter worker{})",
        total.convert,
        total.run,
        total.count,
        total.count_workers,
        if total.count_workers == 1 { "" } else { "s" },
    );
    s
}

/// Paper-shape checks for a Figure 9 dataset: no false positives on
/// forbidden tests; PerpLE exposes every allowed target; the exhaustive
/// counter dominates the heuristic. Returns human-readable violations.
pub fn shape_violations(rows: &[Fig9Row]) -> Vec<String> {
    let mut v = Vec::new();
    for r in rows {
        if !r.allowed {
            let total = r.perple_exhaustive + r.perple_heuristic + r.litmus7.iter().sum::<u64>();
            if total != 0 {
                v.push(format!("{}: forbidden target observed ({total})", r.name));
            }
        } else {
            if r.perple_exhaustive == 0 && r.perple_heuristic == 0 {
                v.push(format!("{}: PerpLE missed an allowed target", r.name));
            }
            // A frame-capped exhaustive scan only covers a prefix; the
            // dominance check is meaningful only for complete scans.
            if !r.exhaustive_truncated && r.perple_exhaustive < r.perple_heuristic {
                v.push(format!("{}: heuristic exceeded exhaustive", r.name));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig::default()
            .with_iterations(600)
            .with_seed(0xF19)
    }

    #[test]
    fn fig9_shape_holds_at_reduced_scale() {
        let cfg = small_cfg();
        let rows = fig9(&cfg);
        assert_eq!(rows.len(), 34);
        let violations = shape_violations(&rows);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn perple_beats_user_mode_on_allowed_tests() {
        let cfg = small_cfg();
        let rows = fig9(&cfg);
        let (mut wins, mut total) = (0, 0);
        for r in rows.iter().filter(|r| r.allowed) {
            total += 1;
            if r.perple_exhaustive >= r.litmus7[0] {
                wins += 1;
            }
        }
        assert_eq!(wins, total, "PerpLE-exhaustive must dominate user mode");
    }

    #[test]
    fn suite_parallelism_does_not_change_results() {
        let serial_cfg = ExperimentConfig::default()
            .with_iterations(200)
            .with_seed(0xF19)
            .with_workers(1);
        let par_cfg = serial_cfg.clone().with_workers(3);
        let serial = fig9(&serial_cfg);
        let par = fig9(&par_cfg);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.perple_exhaustive, b.perple_exhaustive, "{}", a.name);
            assert_eq!(a.perple_heuristic, b.perple_heuristic, "{}", a.name);
            assert_eq!(a.litmus7, b.litmus7, "{}", a.name);
            assert_eq!(a.exhaustive_truncated, b.exhaustive_truncated);
        }
    }

    #[test]
    fn render_mentions_all_modes() {
        let cfg = small_cfg();
        let rows = fig9(&cfg);
        let text = render(&rows, &cfg);
        for m in ["user", "userfence", "pthread", "timebase", "none"] {
            assert!(text.contains(m));
        }
        assert!(text.contains("sb"));
    }
}
