//! Design-choice ablations (extension experiments).
//!
//! Three knobs the reproduction's DESIGN calls out are isolated here:
//!
//! * **Heuristic pivot selection** — the paper's step-5 substitution only
//!   works when partner indices are derivable from the pivot's loads; tests
//!   like `n1` resolve only from their *last* reader. We compare detection
//!   with the naive first-thread pivot against the selected pivot.
//! * **Store-buffer drain latency** — how the probability of a buffered
//!   store draining per cycle drives the weak-outcome rate.
//! * **Scheduler dynamics** — how preemption/stall noise (the thread-skew
//!   source, §VII-E) drives outcome variety.

use std::fmt::Write as _;

use perple_analysis::count::{CountRequest, Counter, HeuristicCounter};
use perple_convert::HeuristicOutcome;
use perple_harness::perpetual::PerpleRunner;
use perple_model::suite;
use perple_sim::SimConfig;

use super::ExperimentConfig;
use crate::Conversion;

/// Pivot-selection ablation result for one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PivotAblation {
    /// Test name.
    pub name: String,
    /// Pivot the selector chose.
    pub chosen_pivot: usize,
    /// Target hits with the chosen pivot.
    pub with_selection: u64,
    /// Target hits when pivoting naively on frame position 0.
    pub naive_pivot0: u64,
}

/// Runs the pivot ablation over the allowed suite tests.
pub fn pivot_ablation(cfg: &ExperimentConfig) -> Vec<PivotAblation> {
    suite::allowed_targets()
        .iter()
        .map(|test| {
            // Invariant: `allowed_targets()` is a subset of the
            // convertible suite, so conversion cannot fail.
            let conv = Conversion::convert(test).expect("converts");
            let frame_len = conv.perpetual.load_thread_count();
            let naive =
                HeuristicOutcome::from_perpetual_with_pivot(&conv.target_exhaustive, frame_len, 0);
            let mut runner = PerpleRunner::new(SimConfig::default().with_seed(cfg.seed ^ 0xAB1));
            let run = runner.run(&conv.perpetual, cfg.iterations);
            let bufs = run.bufs();
            let req = CountRequest::new(&bufs, cfg.iterations);
            let selected = HeuristicCounter::single(&conv.target_heuristic).count(&req);
            let naive_count = HeuristicCounter::single(&naive).count(&req);
            PivotAblation {
                name: test.name().to_owned(),
                chosen_pivot: conv.target_heuristic.pivot(),
                with_selection: selected.counts[0],
                naive_pivot0: naive_count.counts[0],
            }
        })
        .collect()
}

/// Drain-probability sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainSweepPoint {
    /// Per-cycle drain probability.
    pub drain_prob: f64,
    /// sb target hits (heuristic) at this latency.
    pub target_hits: u64,
}

/// Sweeps the store-buffer drain probability on the sb test.
pub fn drain_sweep(cfg: &ExperimentConfig) -> Vec<DrainSweepPoint> {
    let test = suite::sb();
    // Invariant: sb is the paper's canonical convertible test.
    let conv = Conversion::convert(&test).expect("converts");
    [0.05, 0.15, 0.35, 0.6, 0.9]
        .iter()
        .map(|&p| {
            let config = SimConfig::default()
                .with_seed(cfg.seed ^ 0xD7A)
                .with_drain_prob(p);
            let mut runner = PerpleRunner::new(config);
            let run = runner.run(&conv.perpetual, cfg.iterations);
            let bufs = run.bufs();
            let count = HeuristicCounter::single(&conv.target_heuristic)
                .count(&CountRequest::new(&bufs, cfg.iterations));
            DrainSweepPoint {
                drain_prob: p,
                target_hits: count.counts[0],
            }
        })
        .collect()
}

/// Scheduler-dynamics sweep result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSweepPoint {
    /// Configuration label.
    pub label: &'static str,
    /// Distinct sb outcomes observed (max 4).
    pub distinct_outcomes: usize,
    /// Total outcome occurrences across per-outcome sampling.
    pub total_hits: u64,
}

/// Sweeps scheduler noise on the sb test and measures outcome variety.
pub fn scheduler_sweep(cfg: &ExperimentConfig) -> Vec<SchedulerSweepPoint> {
    let test = suite::sb();
    // Invariant: sb is the paper's canonical convertible test.
    let conv = Conversion::convert(&test).expect("converts");
    let all = conv.all_outcomes(&test).expect("outcomes");
    let heus: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();
    let configs: [(&'static str, SimConfig); 3] = [
        (
            "quiet (no noise)",
            SimConfig::default()
                .with_seed(cfg.seed)
                .with_preemption(0.0, 0)
                .with_stalls(0.0, 0),
        ),
        ("default", SimConfig::default().with_seed(cfg.seed)),
        (
            "noisy (heavy preemption)",
            SimConfig::default()
                .with_seed(cfg.seed)
                .with_preemption(2e-3, 1_000),
        ),
    ];
    configs
        .into_iter()
        .map(|(label, mut config)| {
            if label == "quiet (no noise)" {
                config.micro_preempt_prob = 0.0;
            }
            let mut runner = PerpleRunner::new(config);
            let run = runner.run(&conv.perpetual, cfg.iterations);
            let bufs = run.bufs();
            let counts =
                HeuristicCounter::each(&heus).count(&CountRequest::new(&bufs, cfg.iterations));
            SchedulerSweepPoint {
                label,
                distinct_outcomes: counts.counts.iter().filter(|&&c| c > 0).count(),
                total_hits: counts.counts.iter().sum(),
            }
        })
        .collect()
}

/// Renders all three ablations.
pub fn render(
    pivots: &[PivotAblation],
    drains: &[DrainSweepPoint],
    scheds: &[SchedulerSweepPoint],
    cfg: &ExperimentConfig,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Ablations ({} iterations)", cfg.iterations);
    let _ = writeln!(s, "-- heuristic pivot selection --");
    let _ = writeln!(
        s,
        "{:<16} {:>6} {:>14} {:>14}",
        "test", "pivot", "selected", "naive-pivot0"
    );
    for p in pivots {
        let _ = writeln!(
            s,
            "{:<16} {:>6} {:>14} {:>14}",
            p.name, p.chosen_pivot, p.with_selection, p.naive_pivot0
        );
    }
    let _ = writeln!(s, "-- store-buffer drain probability (sb target rate) --");
    for d in drains {
        let _ = writeln!(s, "  p={:<5} hits={}", d.drain_prob, d.target_hits);
    }
    let _ = writeln!(s, "-- scheduler noise (sb outcome variety) --");
    for p in scheds {
        let _ = writeln!(
            s,
            "  {:<26} distinct={} total={}",
            p.label, p.distinct_outcomes, p.total_hits
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::default()
            .with_iterations(2_000)
            .with_seed(0xAB)
    }

    #[test]
    fn pivot_selection_never_hurts_and_rescues_n1() {
        let pivots = pivot_ablation(&cfg());
        for p in &pivots {
            if p.chosen_pivot == 0 {
                assert_eq!(p.with_selection, p.naive_pivot0, "{}", p.name);
            }
        }
        let n1 = pivots.iter().find(|p| p.name == "n1").unwrap();
        assert_ne!(n1.chosen_pivot, 0, "n1 must pivot on its final reader");
        assert!(n1.with_selection > 0, "selected pivot must detect n1");
        assert!(
            n1.with_selection > n1.naive_pivot0,
            "selection must beat the lockstep fallback on n1"
        );
    }

    #[test]
    fn slower_drains_expose_more_store_buffering() {
        let sweep = drain_sweep(&cfg());
        assert_eq!(sweep.len(), 5);
        let slow = sweep.first().unwrap().target_hits;
        let fast = sweep.last().unwrap().target_hits;
        assert!(
            slow > fast,
            "p=0.05 ({slow}) should beat p=0.9 ({fast}): longer buffer residency"
        );
    }

    #[test]
    fn noise_increases_outcome_variety() {
        let sweep = scheduler_sweep(&cfg());
        let quiet = &sweep[0];
        let default = &sweep[1];
        assert!(default.distinct_outcomes >= quiet.distinct_outcomes);
        assert!(default.distinct_outcomes >= 3);
    }

    #[test]
    fn render_mentions_all_three() {
        let c = cfg();
        let text = render(
            &pivot_ablation(&c),
            &drain_sweep(&c),
            &scheduler_sweep(&c),
            &c,
        );
        assert!(text.contains("pivot selection"));
        assert!(text.contains("drain probability"));
        assert!(text.contains("scheduler noise"));
    }
}
