//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§VI–§VII). Each submodule computes one artifact's data and
//! renders it as a text table; the `perple-bench` binaries are thin
//! wrappers around these drivers.
//!
//! | paper artifact | driver |
//! |---|---|
//! | Table II (suite + classification) | [`table2`] |
//! | Figure 9 (target occurrences, 10k iters) | [`fig9`] |
//! | Figure 10 (runtime speedups vs `user`) | [`fig10`] |
//! | Figure 11 (detection-rate improvement vs iterations) | [`fig11`] |
//! | Figure 12 (thread-skew PDF) | [`fig12`] |
//! | Figure 13 (outcome variety) | [`fig13`] |
//! | §VII-G (overall impact on the 88-test suite) | [`overall`] |
//! | extension: bug hunt on a faulty machine | [`bugfinder`] |
//! | extension: design-choice ablations | [`ablation`] |

pub mod ablation;
pub mod bugfinder;
pub mod campaign;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig9;
pub mod overall;
pub mod pool;
pub mod resilient;
pub mod table2;

use std::time::Instant;

use perple_analysis::count::{
    default_workers, CountRequest, Counter, CounterKind, ExhaustiveCounter, HeuristicCounter,
};
use perple_analysis::metrics::{Detection, ModelTime, StageTimings};
use perple_harness::baseline::{BaselineRunner, SyncMode};
use perple_harness::perpetual::PerpleRunner;
use perple_model::LitmusTest;
use perple_sim::{Budget, FaultPlan, SimConfig};

use crate::error::PerpleError;
use crate::Conversion;

/// Worker-thread budget of an experiment: how many suite tests run
/// concurrently and how many threads each counting pass shards over.
///
/// Results are identical at every setting — suite tests derive their own
/// seeds (see `derive_seed`) and the parallel counters are bit-identical to
/// the serial ones — so parallelism only changes wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Concurrent per-test experiment tasks (the suite-level pool).
    pub suite_workers: usize,
    /// Worker threads per counting pass (frame/pivot sharding).
    pub counter_workers: usize,
}

impl Default for Parallelism {
    /// Both knobs default to the machine's available parallelism.
    fn default() -> Self {
        let w = default_workers();
        Self {
            suite_workers: w,
            counter_workers: w,
        }
    }
}

impl Parallelism {
    /// Fully serial execution (the pre-parallel behaviour).
    pub fn serial() -> Self {
        Self {
            suite_workers: 1,
            counter_workers: 1,
        }
    }

    /// `n` workers for both the suite pool and the counters.
    pub fn workers(n: usize) -> Self {
        let n = n.max(1);
        Self {
            suite_workers: n,
            counter_workers: n,
        }
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Iterations per test run.
    pub iterations: u64,
    /// Base PRNG seed (varied deterministically per test/tool).
    pub seed: u64,
    /// Frame cap for the exhaustive counter (`None` scans all `N^{T_L}`
    /// frames; `T_L = 3` tests need a cap at large `N`).
    pub exhaustive_frame_cap: Option<u64>,
    /// Suite-level and counter-level worker budget.
    pub parallelism: Parallelism,
    /// Per-stage wall-clock watchdog in milliseconds (`--timeout-ms`);
    /// `None` runs unbudgeted. Each stage (run, count) gets a fresh budget
    /// and returns a partial, flagged result when it expires.
    pub timeout_ms: Option<u64>,
    /// How many times a failed (panicked / timed-out) suite item is retried
    /// with a deterministically perturbed seed (`--retries`).
    pub retries: u32,
    /// Machine-level fault-injection plan (`--inject`), applied to every
    /// PerpLE run. Empty by default (bit-identical to no injection).
    pub fault_plan: FaultPlan,
    /// Run the deliberately TSO-violating weak-store-order machine
    /// (conformance-audit drivers hunt violations on it).
    pub weak_machine: bool,
    /// Which backend produces the exact (non-heuristic) target counts in
    /// audit-style drivers (`--counter`). [`CounterKind::Rf`] — the default
    /// — walks observed reads-from partners in polynomial time and is
    /// bit-identical to [`CounterKind::Exhaustive`]; outside the rf
    /// fragment it falls back to the exhaustive scan with the downgrade
    /// recorded. [`CounterKind::Heuristic`] skips the exact pass entirely
    /// and lets the linear heuristic stand in.
    pub counter: CounterKind,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            iterations: 10_000,
            seed: 0x9E37,
            exhaustive_frame_cap: Some(100_000_000),
            parallelism: Parallelism::default(),
            timeout_ms: None,
            retries: 0,
            fault_plan: FaultPlan::none(),
            weak_machine: false,
            counter: CounterKind::Rf,
        }
    }
}

impl ExperimentConfig {
    /// Starts a validating builder seeded with the defaults. Unlike the
    /// `with_*` combinators (which trust their inputs), [`build`] rejects
    /// nonsensical configurations — zero iterations, zero workers, a zero
    /// watchdog or frame cap — as [`PerpleError::Config`].
    ///
    /// [`build`]: ExperimentConfigBuilder::build
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            cfg: ExperimentConfig::default(),
            workers: None,
        }
    }

    /// Returns the config with a different iteration count.
    pub fn with_iterations(mut self, n: u64) -> Self {
        self.iterations = n;
        self
    }

    /// Returns the config with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with `n` workers for both the suite pool and
    /// the parallel counters.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.parallelism = Parallelism::workers(n);
        self
    }

    /// Returns the config with a per-stage wall-clock watchdog.
    pub fn with_timeout_ms(mut self, ms: Option<u64>) -> Self {
        self.timeout_ms = ms;
        self
    }

    /// Returns the config retrying failed items up to `retries` times.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Returns the config with a machine fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Returns the config targeting the weak-store-order machine.
    pub fn with_weak_machine(mut self, weak: bool) -> Self {
        self.weak_machine = weak;
        self
    }

    /// Returns the config with a different exact-counter backend.
    pub fn with_counter(mut self, counter: CounterKind) -> Self {
        self.counter = counter;
        self
    }

    /// Simulator configuration for one derived seed, carrying the
    /// experiment's fault plan and machine choice.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        SimConfig::default()
            .with_seed(seed)
            .with_weak_store_order(self.weak_machine)
            .with_fault_plan(self.fault_plan.clone())
    }

    /// A fresh per-stage watchdog honoring [`ExperimentConfig::timeout_ms`].
    pub fn stage_budget(&self) -> Budget {
        match self.timeout_ms {
            Some(ms) => Budget::with_timeout_ms(ms),
            None => Budget::unlimited(),
        }
    }
}

/// Validating builder for [`ExperimentConfig`] (see
/// [`ExperimentConfig::builder`]). Setters stage values; [`build`] checks
/// them all at once and reports the first violation as
/// [`PerpleError::Config`], naming the offending field.
///
/// [`build`]: ExperimentConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    cfg: ExperimentConfig,
    /// Staged raw worker count; validated (nonzero) before it becomes a
    /// [`Parallelism`], which would otherwise silently clamp.
    workers: Option<usize>,
}

impl ExperimentConfigBuilder {
    /// Iterations per test run (must be at least 1).
    pub fn iterations(mut self, n: u64) -> Self {
        self.cfg.iterations = n;
        self
    }

    /// Base PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Frame cap for the exhaustive counter (`Some(0)` is rejected; use
    /// `None` to scan everything).
    pub fn exhaustive_frame_cap(mut self, cap: Option<u64>) -> Self {
        self.cfg.exhaustive_frame_cap = cap;
        self
    }

    /// Worker threads for both the suite pool and the parallel counters
    /// (must be at least 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Per-stage watchdog in milliseconds (`Some(0)` is rejected; use
    /// `None` to run unbudgeted).
    pub fn timeout_ms(mut self, ms: Option<u64>) -> Self {
        self.cfg.timeout_ms = ms;
        self
    }

    /// Retries for failed suite items.
    pub fn retries(mut self, retries: u32) -> Self {
        self.cfg.retries = retries;
        self
    }

    /// Machine fault-injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Target the weak-store-order (deliberately TSO-violating) machine.
    pub fn weak_machine(mut self, weak: bool) -> Self {
        self.cfg.weak_machine = weak;
        self
    }

    /// Exact-counter backend for audit-style drivers.
    pub fn counter(mut self, counter: CounterKind) -> Self {
        self.cfg.counter = counter;
        self
    }

    /// Validates the staged configuration.
    ///
    /// # Errors
    /// [`PerpleError::Config`] naming the first invalid field.
    pub fn build(mut self) -> Result<ExperimentConfig, PerpleError> {
        if self.cfg.iterations == 0 {
            return Err(PerpleError::Config("iterations must be at least 1".into()));
        }
        if self.cfg.timeout_ms == Some(0) {
            return Err(PerpleError::Config(
                "timeout_ms must be at least 1 (use None for unbudgeted)".into(),
            ));
        }
        if self.cfg.exhaustive_frame_cap == Some(0) {
            return Err(PerpleError::Config(
                "exhaustive_frame_cap must be at least 1 (use None to scan everything)".into(),
            ));
        }
        if let Some(w) = self.workers {
            if w == 0 {
                return Err(PerpleError::Config("workers must be at least 1".into()));
            }
            self.cfg.parallelism = Parallelism::workers(w);
        }
        Ok(self.cfg)
    }
}

/// Derives a per-(test, tool) seed so tools see decorrelated but
/// reproducible schedules.
fn derive_seed(base: u64, test_name: &str, tool: &str) -> u64 {
    let mut h = base ^ 0xDEAD_BEEF_CAFE_F00D;
    for b in test_name.bytes().chain(tool.bytes()) {
        h = h.rotate_left(7) ^ b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Runs the perpetual test under the config's budgets: unbudgeted when no
/// watchdog is armed (the historical path, bit-identical to before budgets
/// existed), budgeted with a fresh per-stage [`Budget`] otherwise.
fn run_stage(
    runner: &mut PerpleRunner,
    conv: &Conversion,
    cfg: &ExperimentConfig,
) -> perple_harness::perpetual::PerpleRun {
    match cfg.timeout_ms {
        None => runner.run(&conv.perpetual, cfg.iterations),
        Some(_) => runner.run_budgeted(&conv.perpetual, cfg.iterations, &cfg.stage_budget()),
    }
}

/// Runs PerpLE on one test and measures target detection with the chosen
/// counter. Returns the detection plus the raw occurrence count.
///
/// Honors [`ExperimentConfig::timeout_ms`] (each stage watchdogged,
/// partial results on expiry) and [`ExperimentConfig::fault_plan`].
pub fn perple_detection(
    test: &LitmusTest,
    conv: &Conversion,
    cfg: &ExperimentConfig,
    heuristic: bool,
) -> Detection {
    let workers = cfg.parallelism.counter_workers;
    let seed = derive_seed(
        cfg.seed,
        test.name(),
        if heuristic { "perple-h" } else { "perple-x" },
    );
    let mut runner = PerpleRunner::new(cfg.sim_config(seed));
    let run = run_stage(&mut runner, conv, cfg);
    let n = run.iterations;
    let bufs = run.bufs();
    let budget = cfg.timeout_ms.map(|_| cfg.stage_budget());
    let mut req = CountRequest::new(&bufs, n).with_workers(workers);
    if let Some(b) = budget.as_ref() {
        req = req.with_budget(b);
    }
    let count = if heuristic {
        HeuristicCounter::single(&conv.target_heuristic).count(&req)
    } else {
        ExhaustiveCounter::single(&conv.target_exhaustive)
            .count(&req.with_frame_cap(cfg.exhaustive_frame_cap))
    };
    Detection {
        occurrences: count.counts[0],
        time: ModelTime::new(run.exec_cycles, count.evals),
    }
}

/// Runs PerpLE **once** and measures target detection under both counters
/// (the paper's runtime comparisons share the execution and differ only in
/// counting). Returns `(heuristic, exhaustive)`.
pub fn perple_detection_both(
    test: &LitmusTest,
    conv: &Conversion,
    cfg: &ExperimentConfig,
) -> (Detection, Detection) {
    let (heur, exh, _) = perple_detection_both_timed(test, conv, cfg);
    (heur, exh)
}

/// [`perple_detection_both`] plus per-stage wall-clock timings (the run
/// stage and the combined counting stage; the caller supplies conversion
/// time, which happens once per test outside this function).
pub fn perple_detection_both_timed(
    test: &LitmusTest,
    conv: &Conversion,
    cfg: &ExperimentConfig,
) -> (Detection, Detection, StageTimings) {
    let workers = cfg.parallelism.counter_workers;
    let seed = derive_seed(cfg.seed, test.name(), "perple");
    let mut runner = PerpleRunner::new(cfg.sim_config(seed));
    let t_run = Instant::now();
    let run = run_stage(&mut runner, conv, cfg);
    let run_wall = t_run.elapsed();
    let n = run.iterations;
    let bufs = run.bufs();
    let req = CountRequest::new(&bufs, n).with_workers(workers);
    let heur = HeuristicCounter::single(&conv.target_heuristic).count(&req);
    let exh = ExhaustiveCounter::single(&conv.target_exhaustive)
        .count(&req.with_frame_cap(cfg.exhaustive_frame_cap));
    let mut timings = StageTimings {
        count_workers: workers.max(1),
        ..StageTimings::default()
    };
    timings.add_run(run_wall);
    timings.add_count(heur.wall);
    timings.add_count(exh.wall);
    (
        Detection {
            occurrences: heur.counts[0],
            time: ModelTime::new(run.exec_cycles, heur.evals),
        },
        Detection {
            occurrences: exh.counts[0],
            time: ModelTime::new(run.exec_cycles, exh.evals),
        },
        timings,
    )
}

/// Runs the litmus7 baseline in one mode and measures target detection.
/// litmus7's counting is one outcome check per iteration.
pub fn baseline_detection(test: &LitmusTest, mode: SyncMode, cfg: &ExperimentConfig) -> Detection {
    let seed = derive_seed(cfg.seed, test.name(), mode.as_str());
    let mut runner = BaselineRunner::new(cfg.sim_config(seed), mode);
    let run = runner.run(test, cfg.iterations);
    Detection {
        occurrences: run.target_count,
        time: ModelTime::new(run.exec_cycles, cfg.iterations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    #[test]
    fn derive_seed_varies_by_inputs() {
        let a = derive_seed(1, "sb", "user");
        let b = derive_seed(1, "sb", "pthread");
        let c = derive_seed(1, "lb", "user");
        let d = derive_seed(2, "sb", "user");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, derive_seed(1, "sb", "user"));
    }

    #[test]
    fn perple_detects_sb_target_where_user_mode_struggles() {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        let cfg = ExperimentConfig::default().with_iterations(2_000);
        let perple = perple_detection(&t, &conv, &cfg, true);
        let user = baseline_detection(&t, SyncMode::User, &cfg);
        assert!(perple.occurrences > 0);
        assert!(
            perple.occurrences >= user.occurrences,
            "perple {} vs user {}",
            perple.occurrences,
            user.occurrences
        );
    }

    #[test]
    fn config_builders() {
        let c = ExperimentConfig::default().with_iterations(5).with_seed(9);
        assert_eq!(c.iterations, 5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn validating_builder_accepts_whole_configurations() {
        let c = ExperimentConfig::builder()
            .iterations(5)
            .seed(9)
            .workers(3)
            .timeout_ms(Some(250))
            .retries(2)
            .weak_machine(true)
            .counter(CounterKind::Exhaustive)
            .exhaustive_frame_cap(None)
            .build()
            .unwrap();
        assert_eq!(c.iterations, 5);
        assert_eq!(c.seed, 9);
        assert_eq!(c.parallelism, Parallelism::workers(3));
        assert_eq!(c.timeout_ms, Some(250));
        assert_eq!(c.retries, 2);
        assert!(c.weak_machine);
        assert_eq!(c.counter, CounterKind::Exhaustive);
        assert_eq!(c.exhaustive_frame_cap, None);
    }

    #[test]
    fn validating_builder_defaults_equal_the_default_config() {
        let built = ExperimentConfig::builder().build().unwrap();
        let default = ExperimentConfig::default();
        assert_eq!(built.iterations, default.iterations);
        assert_eq!(built.seed, default.seed);
        assert_eq!(built.exhaustive_frame_cap, default.exhaustive_frame_cap);
        assert_eq!(built.parallelism, default.parallelism);
        assert_eq!(built.timeout_ms, default.timeout_ms);
        assert_eq!(built.retries, default.retries);
        assert_eq!(built.weak_machine, default.weak_machine);
        assert_eq!(built.counter, CounterKind::Rf);
    }

    #[test]
    fn validating_builder_rejects_degenerate_values() {
        for (builder, needle) in [
            (ExperimentConfig::builder().iterations(0), "iterations"),
            (ExperimentConfig::builder().workers(0), "workers"),
            (
                ExperimentConfig::builder().timeout_ms(Some(0)),
                "timeout_ms",
            ),
            (
                ExperimentConfig::builder().exhaustive_frame_cap(Some(0)),
                "frame_cap",
            ),
        ] {
            match builder.build() {
                Err(PerpleError::Config(msg)) => {
                    assert!(msg.contains(needle), "{msg:?} should name {needle}")
                }
                other => panic!("expected Config error for {needle}, got {other:?}"),
            }
        }
    }
}
