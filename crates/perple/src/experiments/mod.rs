//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§VI–§VII). Each submodule computes one artifact's data and
//! renders it as a text table; the `perple-bench` binaries are thin
//! wrappers around these drivers.
//!
//! | paper artifact | driver |
//! |---|---|
//! | Table II (suite + classification) | [`table2`] |
//! | Figure 9 (target occurrences, 10k iters) | [`fig9`] |
//! | Figure 10 (runtime speedups vs `user`) | [`fig10`] |
//! | Figure 11 (detection-rate improvement vs iterations) | [`fig11`] |
//! | Figure 12 (thread-skew PDF) | [`fig12`] |
//! | Figure 13 (outcome variety) | [`fig13`] |
//! | §VII-G (overall impact on the 88-test suite) | [`overall`] |
//! | extension: bug hunt on a faulty machine | [`bugfinder`] |
//! | extension: design-choice ablations | [`ablation`] |

pub mod bugfinder;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig9;
pub mod overall;
pub mod table2;
pub mod ablation;

use perple_analysis::count::{count_exhaustive, count_heuristic};
use perple_analysis::metrics::{Detection, ModelTime};
use perple_harness::baseline::{BaselineRunner, SyncMode};
use perple_harness::perpetual::PerpleRunner;
use perple_model::LitmusTest;
use perple_sim::SimConfig;

use crate::Conversion;

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Iterations per test run.
    pub iterations: u64,
    /// Base PRNG seed (varied deterministically per test/tool).
    pub seed: u64,
    /// Frame cap for the exhaustive counter (`None` scans all `N^{T_L}`
    /// frames; `T_L = 3` tests need a cap at large `N`).
    pub exhaustive_frame_cap: Option<u64>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            iterations: 10_000,
            seed: 0x9E37,
            exhaustive_frame_cap: Some(100_000_000),
        }
    }
}

impl ExperimentConfig {
    /// Returns the config with a different iteration count.
    pub fn with_iterations(mut self, n: u64) -> Self {
        self.iterations = n;
        self
    }

    /// Returns the config with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Derives a per-(test, tool) seed so tools see decorrelated but
/// reproducible schedules.
fn derive_seed(base: u64, test_name: &str, tool: &str) -> u64 {
    let mut h = base ^ 0xDEAD_BEEF_CAFE_F00D;
    for b in test_name.bytes().chain(tool.bytes()) {
        h = h.rotate_left(7) ^ b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Runs PerpLE on one test and measures target detection with the chosen
/// counter. Returns the detection plus the raw occurrence count.
pub fn perple_detection(
    test: &LitmusTest,
    conv: &Conversion,
    cfg: &ExperimentConfig,
    heuristic: bool,
) -> Detection {
    let seed = derive_seed(cfg.seed, test.name(), if heuristic { "perple-h" } else { "perple-x" });
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
    let run = runner.run(&conv.perpetual, cfg.iterations);
    let bufs = run.bufs();
    let count = if heuristic {
        count_heuristic(std::slice::from_ref(&conv.target_heuristic), &bufs, cfg.iterations)
    } else {
        count_exhaustive(
            std::slice::from_ref(&conv.target_exhaustive),
            &bufs,
            cfg.iterations,
            cfg.exhaustive_frame_cap,
        )
    };
    Detection {
        occurrences: count.counts[0],
        time: ModelTime::new(run.exec_cycles, count.evals),
    }
}

/// Runs PerpLE **once** and measures target detection under both counters
/// (the paper's runtime comparisons share the execution and differ only in
/// counting). Returns `(heuristic, exhaustive)`.
pub fn perple_detection_both(
    test: &LitmusTest,
    conv: &Conversion,
    cfg: &ExperimentConfig,
) -> (Detection, Detection) {
    let seed = derive_seed(cfg.seed, test.name(), "perple");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
    let run = runner.run(&conv.perpetual, cfg.iterations);
    let bufs = run.bufs();
    let heur = count_heuristic(
        std::slice::from_ref(&conv.target_heuristic),
        &bufs,
        cfg.iterations,
    );
    let exh = count_exhaustive(
        std::slice::from_ref(&conv.target_exhaustive),
        &bufs,
        cfg.iterations,
        cfg.exhaustive_frame_cap,
    );
    (
        Detection {
            occurrences: heur.counts[0],
            time: ModelTime::new(run.exec_cycles, heur.evals),
        },
        Detection {
            occurrences: exh.counts[0],
            time: ModelTime::new(run.exec_cycles, exh.evals),
        },
    )
}

/// Runs the litmus7 baseline in one mode and measures target detection.
/// litmus7's counting is one outcome check per iteration.
pub fn baseline_detection(
    test: &LitmusTest,
    mode: SyncMode,
    cfg: &ExperimentConfig,
) -> Detection {
    let seed = derive_seed(cfg.seed, test.name(), mode.as_str());
    let mut runner = BaselineRunner::new(SimConfig::default().with_seed(seed), mode);
    let run = runner.run(test, cfg.iterations);
    Detection {
        occurrences: run.target_count,
        time: ModelTime::new(run.exec_cycles, cfg.iterations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    #[test]
    fn derive_seed_varies_by_inputs() {
        let a = derive_seed(1, "sb", "user");
        let b = derive_seed(1, "sb", "pthread");
        let c = derive_seed(1, "lb", "user");
        let d = derive_seed(2, "sb", "user");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, derive_seed(1, "sb", "user"));
    }

    #[test]
    fn perple_detects_sb_target_where_user_mode_struggles() {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        let cfg = ExperimentConfig::default().with_iterations(2_000);
        let perple = perple_detection(&t, &conv, &cfg, true);
        let user = baseline_detection(&t, SyncMode::User, &cfg);
        assert!(perple.occurrences > 0);
        assert!(
            perple.occurrences >= user.occurrences,
            "perple {} vs user {}",
            perple.occurrences,
            user.occurrences
        );
    }

    #[test]
    fn config_builders() {
        let c = ExperimentConfig::default().with_iterations(5).with_seed(9);
        assert_eq!(c.iterations, 5);
        assert_eq!(c.seed, 9);
    }
}
