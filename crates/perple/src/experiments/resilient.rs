//! Resilient suite execution: per-item panic isolation, per-stage watchdog
//! budgets, deterministic retries, and quarantine reporting.
//!
//! A suite run must never die because one test misbehaves — a panicking
//! worker, a livelocked (fault-injected) machine, a counting pass that
//! outgrows its budget. [`run_suite_resilient`] executes every item on the
//! suite pool with each **attempt** wrapped in `catch_unwind`, converts
//! panics and watchdog expiries into the [`PerpleError`] taxonomy, retries
//! failed items up to [`ExperimentConfig::retries`] times with a
//! deterministically perturbed seed (attempt `k` always uses the same
//! seed, so a flaky failure reproduces exactly under `--seed`), and emits
//! a per-suite quarantine report in text and JSON.
//!
//! [`resilient_audit`] is the batteries-included driver: it audits every
//! convertible suite test under the config's fault plan and budgets, and
//! **degrades gracefully** — when the exhaustive counter's budget expires,
//! the heuristic counts stand in for it and the downgrade is recorded on
//! the row (and in the results JSON).

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use perple_analysis::count::{
    CountRequest, Counter, CounterKind, ExhaustiveCounter, HeuristicCounter,
};
use perple_analysis::jsonout::Json;
use perple_analysis::metrics::StageTimings;
use perple_analysis::rf::RfCounter;
use perple_model::{suite, LitmusTest};
use perple_obs::metrics::{self as obs_metrics, Hist, Metric};

use crate::error::{panic_message, PerpleError};
use crate::Conversion;

use super::{derive_seed, pool, ExperimentConfig};

/// Odd multiplier perturbing the seed per retry attempt: attempt `k` of an
/// item always sees the same seed, so failures reproduce deterministically.
const ATTEMPT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-item seed for retry `attempt` (attempt 0 is the unperturbed seed).
pub fn attempt_seed(base: u64, attempt: u32) -> u64 {
    base.wrapping_add((attempt as u64).wrapping_mul(ATTEMPT_SEED_STRIDE))
}

/// How one suite item ended up after all its attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemStatus {
    /// Succeeded on the first attempt.
    Ok,
    /// Failed at least once, then succeeded on a retry.
    Recovered,
    /// Every permitted attempt failed; no result for this item.
    Quarantined,
}

impl ItemStatus {
    /// Lowercase tag used in the text and JSON reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ItemStatus::Ok => "ok",
            ItemStatus::Recovered => "recovered",
            ItemStatus::Quarantined => "quarantined",
        }
    }
}

/// One attempt at one suite item.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// The seed this attempt ran under (see [`attempt_seed`]).
    pub seed: u64,
    /// `None` on success; the classified failure otherwise.
    pub error: Option<PerpleError>,
    /// Wall-clock time of this attempt.
    pub wall: Duration,
}

/// Everything that happened to one suite item.
#[derive(Debug, Clone)]
pub struct ItemReport {
    /// Test (item) name.
    pub name: String,
    /// Final disposition after all attempts.
    pub status: ItemStatus,
    /// Every attempt in order; the last one decided `status`.
    pub attempts: Vec<AttemptRecord>,
    /// Total wall-clock time across attempts.
    pub wall: Duration,
}

impl ItemReport {
    /// Kind tag of the failure that sent this item to quarantine (the last
    /// attempt's error), if any.
    pub fn fault_kind(&self) -> Option<&'static str> {
        self.attempts
            .last()
            .and_then(|a| a.error.as_ref())
            .map(PerpleError::kind)
    }
}

/// Results plus quarantine bookkeeping for one resilient suite run.
///
/// `results[i]` is `Some` iff item `i` produced a value (status `ok` or
/// `recovered`); quarantined items keep their slot as `None` so indices
/// always align with the input items.
#[derive(Debug, Clone)]
pub struct SuiteReport<R> {
    /// Per-item results, input order, `None` for quarantined items.
    pub results: Vec<Option<R>>,
    /// Per-item dispositions, input order.
    pub items: Vec<ItemReport>,
}

impl<R> SuiteReport<R> {
    /// The quarantined items, input order.
    pub fn quarantined(&self) -> Vec<&ItemReport> {
        self.items
            .iter()
            .filter(|i| i.status == ItemStatus::Quarantined)
            .collect()
    }

    /// The items that needed a retry but succeeded.
    pub fn recovered(&self) -> Vec<&ItemReport> {
        self.items
            .iter()
            .filter(|i| i.status == ItemStatus::Recovered)
            .collect()
    }

    /// Renders the quarantine report as text: a summary line plus one line
    /// per non-`ok` item (name, fault kind, attempts, per-attempt walls).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let q = self.quarantined().len();
        let r = self.recovered().len();
        let _ = writeln!(
            s,
            "suite: {} items, {} ok, {} recovered, {} quarantined",
            self.items.len(),
            self.items.len() - q - r,
            r,
            q
        );
        for item in &self.items {
            if item.status == ItemStatus::Ok {
                continue;
            }
            let _ = write!(
                s,
                "  {:<12} {:<11} fault={:<8} attempts={}",
                item.name,
                item.status.as_str(),
                item.fault_kind().unwrap_or("-"),
                item.attempts.len(),
            );
            for a in &item.attempts {
                let _ = write!(
                    s,
                    " [seed {:#x}: {} in {}ms]",
                    a.seed,
                    a.error.as_ref().map_or("ok", |e| e.kind()),
                    a.wall.as_millis(),
                );
            }
            let _ = writeln!(s);
        }
        s
    }

    /// The quarantine report as a [`Json`] value (built on the shared
    /// `jsonout` writer — the offline build has no serde).
    pub fn to_json_value(&self) -> Json {
        let items = self
            .items
            .iter()
            .map(|item| {
                let attempts = item
                    .attempts
                    .iter()
                    .map(|a| {
                        Json::obj(vec![
                            ("seed", Json::from(a.seed)),
                            ("wall_ms", Json::from(a.wall.as_millis())),
                            (
                                "error",
                                match &a.error {
                                    Some(e) => Json::obj(vec![
                                        ("kind", Json::from(e.kind())),
                                        ("message", Json::from(e.to_string())),
                                    ]),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("name", Json::from(item.name.as_str())),
                    ("status", Json::from(item.status.as_str())),
                    ("attempts", Json::Arr(attempts)),
                    ("wall_ms", Json::from(item.wall.as_millis())),
                ])
            })
            .collect();
        Json::obj(vec![("items", Json::Arr(items))])
    }

    /// Renders the quarantine report as compact JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

/// Runs `f` over every item on the suite pool with panic isolation,
/// retries, and quarantine bookkeeping.
///
/// `f(item, seed)` runs one attempt: panics become
/// [`PerpleError::WorkerPanic`], `Err` returns are classified by the
/// closure itself (timeouts, conversion failures). Failed attempts retry
/// up to [`ExperimentConfig::retries`] times — but only for
/// [`PerpleError::retryable`] errors; deterministic failures (conversion,
/// config) quarantine immediately. Attempt `k` runs under
/// [`attempt_seed`]`(derive_seed(cfg.seed, name, tag), k)`.
pub fn run_suite_resilient<T, R, F>(
    items: &[T],
    cfg: &ExperimentConfig,
    name_of: impl Fn(&T) -> String + Sync,
    tag: &str,
    f: F,
) -> SuiteReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> Result<R, PerpleError> + Sync,
{
    let outcomes = pool::try_map_parallel(
        items,
        cfg.parallelism.suite_workers,
        |_, item| -> (Option<R>, ItemReport) {
            let name = name_of(item);
            let base = derive_seed(cfg.seed, &name, tag);
            let t0 = Instant::now();
            let mut attempts = Vec::new();
            let mut result = None;
            for attempt in 0..=cfg.retries {
                let seed = attempt_seed(base, attempt);
                let a0 = Instant::now();
                let r = catch_unwind(AssertUnwindSafe(|| f(item, seed)))
                    .map_err(|p| PerpleError::WorkerPanic {
                        message: panic_message(&*p),
                    })
                    .and_then(|r| r);
                let attempt_wall = a0.elapsed();
                obs_metrics::observe(
                    Hist::ExecAttemptMicros,
                    u64::try_from(attempt_wall.as_micros()).unwrap_or(u64::MAX),
                );
                match r {
                    Ok(v) => {
                        attempts.push(AttemptRecord {
                            seed,
                            error: None,
                            wall: attempt_wall,
                        });
                        result = Some(v);
                        break;
                    }
                    Err(e) => {
                        if matches!(e, PerpleError::StageTimeout { .. }) {
                            obs_metrics::add(Metric::ExecBudgetExpiries, 1);
                        }
                        let retryable = e.retryable();
                        attempts.push(AttemptRecord {
                            seed,
                            error: Some(e),
                            wall: attempt_wall,
                        });
                        if !retryable {
                            break;
                        }
                    }
                }
            }
            let status = match (&result, attempts.len()) {
                (Some(_), 1) => ItemStatus::Ok,
                (Some(_), _) => ItemStatus::Recovered,
                (None, _) => ItemStatus::Quarantined,
            };
            obs_metrics::add(Metric::ExecRetries, attempts.len().saturating_sub(1) as u64);
            if status == ItemStatus::Quarantined {
                obs_metrics::add(Metric::ExecQuarantines, 1);
            }
            (
                result,
                ItemReport {
                    name,
                    status,
                    attempts,
                    wall: t0.elapsed(),
                },
            )
        },
    );

    let mut results = Vec::with_capacity(items.len());
    let mut reports = Vec::with_capacity(items.len());
    for (outcome, item) in outcomes.into_iter().zip(items) {
        match outcome {
            Ok((result, report)) => {
                results.push(result);
                reports.push(report);
            }
            // The item closure cannot itself panic (every attempt is
            // caught), but a harness bug would surface here; keep the slot
            // and quarantine rather than crash.
            Err(e) => {
                results.push(None);
                reports.push(ItemReport {
                    name: name_of(item),
                    status: ItemStatus::Quarantined,
                    attempts: vec![AttemptRecord {
                        seed: 0,
                        error: Some(e),
                        wall: Duration::ZERO,
                    }],
                    wall: Duration::ZERO,
                });
            }
        }
    }
    SuiteReport {
        results,
        items: reports,
    }
}

/// One audited suite test (the payload of [`resilient_audit`] rows).
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// Test name.
    pub name: String,
    /// Target occurrences from the heuristic counter.
    pub heuristic: u64,
    /// Target occurrences from the exhaustive counter — or, when
    /// `degraded`, the heuristic counts standing in for it.
    pub exhaustive: u64,
    /// True iff the exact counter's budget expired and the row degraded to
    /// heuristic counts (recorded in the results JSON).
    pub degraded: bool,
    /// Name of the backend that produced the `exhaustive` column
    /// ([`ExperimentConfig::counter`]).
    pub counter: &'static str,
    /// True iff the rf backend fell outside its polynomial fragment and
    /// took its recorded exhaustive fallback (always false for the other
    /// backends).
    pub rf_fallback: bool,
    /// Whole iterations actually executed (may be below the configured
    /// count if the run stage's budget expired).
    pub iterations: u64,
    /// False iff the run stage was truncated by its budget.
    pub run_complete: bool,
    /// Machine faults injected during the run (see `FaultPlan`).
    pub faults: u64,
    /// Content digest of the run's observed buffers
    /// (`PerpleRun::content_digest`): equal configs and seeds must yield
    /// equal digests, so digest drift is machine nondeterminism.
    pub digest: u64,
    /// Wall-clock stage timings (convert / run / count).
    pub timings: StageTimings,
}

/// Audits one convertible test under the config's budgets and fault plan.
///
/// Stages: convert → run (budgeted) → heuristic count (budgeted) → exact
/// count (budgeted, degrading to the heuristic counts on expiry). The
/// exact pass uses the configured [`ExperimentConfig::counter`] backend:
/// `rf` (the default) walks reads-from partners in polynomial time,
/// `exhaustive` scans every frame, and `heuristic` skips the pass so the
/// linear counts stand in. A run that completes zero whole iterations is a
/// [`PerpleError::StageTimeout`] — there is nothing to count.
pub fn audit_one(
    test: &LitmusTest,
    cfg: &ExperimentConfig,
    seed: u64,
) -> Result<AuditRow, PerpleError> {
    let t_convert = Instant::now();
    let conv = Conversion::convert(test)?;
    let convert_wall = t_convert.elapsed();

    let mut runner = perple_harness::perpetual::PerpleRunner::new(cfg.sim_config(seed));
    let t_run = Instant::now();
    let run = runner.run_budgeted(&conv.perpetual, cfg.iterations, &cfg.stage_budget());
    let run_wall = t_run.elapsed();
    if run.iterations == 0 {
        return Err(PerpleError::StageTimeout { stage: "run" });
    }
    let n = run.iterations;
    let digest = run.content_digest();
    let bufs = run.bufs();

    let heur_budget = cfg.stage_budget();
    let heur = HeuristicCounter::single(&conv.target_heuristic)
        .count(&CountRequest::new(&bufs, n).with_budget(&heur_budget));
    if heur.budget_expired && heur.frames_examined == 0 {
        return Err(PerpleError::StageTimeout { stage: "count" });
    }

    let exh_budget = cfg.stage_budget();
    let exh_req = CountRequest::new(&bufs, n)
        .with_frame_cap(cfg.exhaustive_frame_cap)
        .with_budget(&exh_budget);
    let exact = match cfg.counter {
        // The heuristic counts stand in for the exact column by choice,
        // not degradation — there is no second counting pass at all.
        CounterKind::Heuristic => None,
        CounterKind::Exhaustive => {
            Some(ExhaustiveCounter::single(&conv.target_exhaustive).count(&exh_req))
        }
        CounterKind::Rf => Some(RfCounter::single(&conv.target_exhaustive).count(&exh_req)),
    };
    let degraded = exact.as_ref().is_some_and(|e| e.budget_expired);
    let rf_fallback = exact.as_ref().is_some_and(|e| e.downgraded);
    let exact_wall = exact.as_ref().map(|e| e.wall);

    Ok(AuditRow {
        name: test.name().to_owned(),
        heuristic: heur.counts[0],
        exhaustive: match &exact {
            Some(e) if !degraded => e.counts[0],
            _ => heur.counts[0],
        },
        degraded,
        counter: cfg.counter.name(),
        rf_fallback,
        iterations: n,
        run_complete: run.complete,
        faults: run.faults,
        digest,
        timings: {
            let mut t = StageTimings {
                count_workers: 1,
                ..StageTimings::default()
            };
            t.add_convert(convert_wall);
            t.add_run(run_wall);
            t.add_count(heur.wall);
            if let Some(w) = exact_wall {
                t.add_count(w);
            }
            t
        },
    })
}

/// Resiliently audits every convertible suite test: all other tests
/// complete even if one panics, livelocks, or corrupts; failures retry
/// deterministically and land in the quarantine report.
pub fn resilient_audit(cfg: &ExperimentConfig) -> SuiteReport<AuditRow> {
    let tests = suite::convertible();
    run_suite_resilient(
        &tests,
        cfg,
        |t| t.name().to_owned(),
        "audit",
        |t, seed| audit_one(t, cfg, seed),
    )
}

/// Renders audit rows (plus quarantine dispositions) as a text table.
pub fn render_audit_text(report: &SuiteReport<AuditRow>) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>12} {:>6} {:>9} {:>8}  flags",
        "test", "heuristic", "exhaustive", "iters", "faults", "wall(ms)"
    );
    for (row, item) in report.results.iter().zip(&report.items) {
        match row {
            Some(r) => {
                let mut flags = Vec::new();
                if r.degraded {
                    flags.push("degraded");
                }
                if r.rf_fallback {
                    flags.push("rf-fallback");
                }
                if !r.run_complete {
                    flags.push("partial-run");
                }
                if item.status == ItemStatus::Recovered {
                    flags.push("recovered");
                }
                let _ = writeln!(
                    s,
                    "{:<12} {:>10} {:>12} {:>6} {:>9} {:>8}  {}",
                    r.name,
                    r.heuristic,
                    r.exhaustive,
                    r.iterations,
                    r.faults,
                    item.wall.as_millis(),
                    if flags.is_empty() {
                        "-".to_owned()
                    } else {
                        flags.join(",")
                    },
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "{:<12} {:>10} {:>12} {:>6} {:>9} {:>8}  quarantined ({})",
                    item.name,
                    "-",
                    "-",
                    "-",
                    "-",
                    item.wall.as_millis(),
                    item.fault_kind().unwrap_or("unknown"),
                );
            }
        }
    }
    s.push('\n');
    s.push_str(&report.render_text());
    s
}

/// Renders audit results as JSON: per-row counts with the `degraded`
/// downgrade, content digest, and stage timings recorded, plus the
/// quarantine report — all through the shared `jsonout` writer.
pub fn audit_json(report: &SuiteReport<AuditRow>) -> String {
    let rows = report
        .results
        .iter()
        .flatten()
        .map(|row| {
            Json::obj(vec![
                ("name", Json::from(row.name.as_str())),
                ("heuristic", Json::from(row.heuristic)),
                ("exhaustive", Json::from(row.exhaustive)),
                ("degraded", Json::from(row.degraded)),
                ("counter", Json::from(row.counter)),
                ("rf_fallback", Json::from(row.rf_fallback)),
                ("iterations", Json::from(row.iterations)),
                ("run_complete", Json::from(row.run_complete)),
                ("faults", Json::from(row.faults)),
                ("digest", Json::from(row.digest)),
                ("timings", row.timings.to_json_value()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("rows", Json::Arr(rows)),
        ("quarantine", report.to_json_value()),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_sim::FaultPlan;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig::default()
            .with_iterations(150)
            .with_workers(4)
    }

    #[test]
    fn attempt_seeds_are_deterministic_and_distinct() {
        assert_eq!(attempt_seed(5, 0), 5);
        assert_eq!(attempt_seed(5, 1), attempt_seed(5, 1));
        assert_ne!(attempt_seed(5, 1), attempt_seed(5, 2));
    }

    #[test]
    fn panicking_item_is_quarantined_and_others_complete() {
        let items: Vec<u32> = (0..8).collect();
        let cfg = quick_cfg().with_retries(2);
        let report = run_suite_resilient(
            &items,
            &cfg,
            |i| format!("item{i}"),
            "test",
            |&i, _seed| {
                if i == 3 {
                    panic!("injected panic");
                }
                Ok::<u32, PerpleError>(i * 10)
            },
        );
        assert_eq!(report.results.len(), 8);
        for (i, r) in report.results.iter().enumerate() {
            if i == 3 {
                assert!(r.is_none());
            } else {
                assert_eq!(r.unwrap(), i as u32 * 10);
            }
        }
        let q = report.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].name, "item3");
        assert_eq!(q[0].fault_kind(), Some("panic"));
        assert_eq!(q[0].attempts.len(), 3, "1 + 2 retries");
        // Retries perturb the seed deterministically.
        assert_ne!(q[0].attempts[0].seed, q[0].attempts[1].seed);
    }

    #[test]
    fn flaky_item_recovers_on_retry() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        let items = [7u32];
        let cfg = quick_cfg().with_retries(1).with_workers(1);
        let report = run_suite_resilient(
            &items,
            &cfg,
            |_| "flaky".to_owned(),
            "test",
            |&v, _seed| {
                if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                    return Err(PerpleError::StageTimeout { stage: "run" });
                }
                Ok(v)
            },
        );
        assert_eq!(report.results[0], Some(7));
        assert_eq!(report.items[0].status, ItemStatus::Recovered);
        assert_eq!(report.items[0].attempts.len(), 2);
    }

    #[test]
    fn non_retryable_errors_quarantine_immediately() {
        let items = [0u32];
        let cfg = quick_cfg().with_retries(5);
        let report = run_suite_resilient(
            &items,
            &cfg,
            |_| "bad".to_owned(),
            "test",
            |_, _| Err::<u32, _>(PerpleError::Config("nope".into())),
        );
        assert_eq!(
            report.items[0].attempts.len(),
            1,
            "no retries for config errors"
        );
        assert_eq!(report.items[0].status, ItemStatus::Quarantined);
    }

    #[test]
    fn reports_render_text_and_json() {
        let items: Vec<u32> = (0..3).collect();
        let report = run_suite_resilient(
            &items,
            &quick_cfg(),
            |i| format!("t{i}"),
            "test",
            |&i, _| {
                if i == 1 {
                    Err(PerpleError::WorkerPanic {
                        message: "with \"quotes\"".into(),
                    })
                } else {
                    Ok(i)
                }
            },
        );
        let text = report.render_text();
        assert!(text.contains("1 quarantined"), "{text}");
        assert!(text.contains("t1"));
        let json = report.to_json();
        assert!(json.contains("\"status\":\"quarantined\""));
        assert!(
            json.contains("\\\"quotes\\\""),
            "quotes must be escaped: {json}"
        );
        assert!(json.contains("\"error\":null"));
    }

    #[test]
    fn resilient_audit_covers_the_convertible_suite() {
        let cfg = quick_cfg();
        let report = resilient_audit(&cfg);
        assert_eq!(report.results.len(), suite::convertible().len());
        assert!(
            report.quarantined().is_empty(),
            "clean config must not quarantine"
        );
        assert!(report.results.iter().all(Option::is_some));
        let sb = report
            .results
            .iter()
            .flatten()
            .find(|r| r.name == "sb")
            .expect("sb is convertible");
        assert!(sb.heuristic > 0, "sb target must be detected");
        assert!(!sb.degraded);
        assert_eq!(sb.iterations, 150);
        let json = audit_json(&report);
        assert!(json.contains("\"degraded\":false"));
        assert!(json.contains("\"rows\":["));
        let text = render_audit_text(&report);
        assert!(text.contains("sb"));
    }

    #[test]
    fn audit_with_fault_plan_detects_or_quarantines_without_crashing() {
        let plan = FaultPlan::parse("corrupt@t0:0..150").unwrap();
        let cfg = quick_cfg().with_fault_plan(plan).with_retries(1);
        let report = resilient_audit(&cfg);
        assert_eq!(report.results.len(), suite::convertible().len());
        // Faults were really injected on completed rows.
        let injected: u64 = report.results.iter().flatten().map(|r| r.faults).sum();
        assert!(injected > 0, "the corrupt plan must fire");
    }

    #[test]
    fn audit_rows_are_deterministic_per_seed() {
        let cfg = quick_cfg().with_workers(4);
        let a = resilient_audit(&cfg);
        let b = resilient_audit(&cfg);
        for (ra, rb) in a.results.iter().zip(&b.results) {
            let (ra, rb) = (ra.as_ref().unwrap(), rb.as_ref().unwrap());
            assert_eq!(ra.heuristic, rb.heuristic, "{}", ra.name);
            assert_eq!(ra.exhaustive, rb.exhaustive, "{}", ra.name);
            assert_eq!(ra.faults, rb.faults, "{}", ra.name);
        }
    }
}
