//! Table II: the perpetual litmus suite with `[T, T_L]` and
//! allowed/forbidden classification, re-derived mechanically.

use std::fmt::Write as _;

use perple_enumerate::classify;
use perple_model::suite;

use super::pool;

/// One row of the regenerated Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Test name.
    pub name: String,
    /// Thread count `T`.
    pub threads: usize,
    /// Load-performing thread count `T_L`.
    pub load_threads: usize,
    /// Allowed under x86-TSO per the operational enumerator.
    pub tso_allowed: bool,
    /// Allowed under SC (targets are always SC-forbidden).
    pub sc_allowed: bool,
    /// Matches the paper's Table II entry.
    pub matches_paper: bool,
}

/// Regenerates Table II by classifying every convertible test with the
/// operational SC/TSO enumerators, on the machine's available parallelism.
pub fn table2() -> Vec<Table2Row> {
    table2_with_workers(perple_analysis::count::default_workers())
}

/// [`table2`] with an explicit suite-pool worker count. Classification is
/// deterministic per test, so every worker count yields identical rows.
pub fn table2_with_workers(workers: usize) -> Vec<Table2Row> {
    let tests = suite::convertible();
    let entries: Vec<_> = tests.iter().zip(suite::TABLE_II).collect();
    pool::map_parallel(&entries, workers, |_, (test, entry)| {
        let c = classify(test);
        Table2Row {
            name: test.name().to_owned(),
            threads: test.thread_count(),
            load_threads: test.load_thread_count(),
            tso_allowed: c.tso_allowed,
            sc_allowed: c.sc_allowed,
            matches_paper: c.tso_allowed == entry.allowed
                && test.thread_count() == entry.threads
                && test.load_thread_count() == entry.load_threads,
        }
    })
}

/// Renders the regenerated table in the paper's two-group layout.
pub fn render(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table II: perpetual litmus suite for x86-TSO");
    for (header, allowed) in [
        ("-- target outcome ALLOWED by x86-TSO --", true),
        ("-- target outcome FORBIDDEN by x86-TSO --", false),
    ] {
        let _ = writeln!(s, "{header}");
        for r in rows.iter().filter(|r| r.tso_allowed == allowed) {
            let _ = writeln!(
                s,
                "  {:<14} [{},{}]  sc_allowed={:<5} {}",
                r.name,
                r.threads,
                r.load_threads,
                r.sc_allowed,
                if r.matches_paper {
                    "✓paper"
                } else {
                    "✗MISMATCH"
                }
            );
        }
    }
    let ok = rows.iter().filter(|r| r.matches_paper).count();
    let _ = writeln!(s, "{ok}/{} rows match the paper's Table II", rows.len());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_34_rows_match_the_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 34);
        for r in &rows {
            assert!(r.matches_paper, "{}", r.name);
            assert!(!r.sc_allowed, "{}: targets are SC-forbidden", r.name);
        }
        assert_eq!(rows.iter().filter(|r| r.tso_allowed).count(), 12);
    }

    #[test]
    fn worker_count_does_not_change_classification() {
        let serial = table2_with_workers(1);
        for workers in [2usize, 7] {
            assert_eq!(table2_with_workers(workers), serial, "workers {workers}");
        }
    }

    #[test]
    fn render_contains_both_groups() {
        let rows = table2();
        let text = render(&rows);
        assert!(text.contains("ALLOWED"));
        assert!(text.contains("FORBIDDEN"));
        assert!(text.contains("sb"));
        assert!(text.contains("34/34"));
    }
}
