//! Bug hunting on a non-conformant implementation (extension experiment).
//!
//! The whole point of empirical consistency testing is catching
//! implementations that violate their published model (§I). This experiment
//! injects a real weakness — out-of-order store-buffer drains, i.e. a
//! PSO-like machine that claims to be x86-TSO — and checks that:
//!
//! 1. PerpLE flags **exactly** the tests whose TSO-forbidden target is
//!    PSO-allowed (no false negatives, no false positives), and
//! 2. it does so at iteration counts where litmus7 `user` mode is still
//!    mostly blind.

use std::fmt::Write as _;

use perple_analysis::count::{CountRequest, Counter, HeuristicCounter};
use perple_enumerate::{enumerate, MemoryModel};
use perple_harness::baseline::{BaselineRunner, SyncMode};
use perple_harness::perpetual::PerpleRunner;
use perple_model::suite;
use perple_sim::SimConfig;

use super::ExperimentConfig;
use crate::Conversion;

/// Verdict for one test on the faulty machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugReport {
    /// Test name.
    pub name: String,
    /// The target is forbidden under (claimed) x86-TSO.
    pub tso_forbidden: bool,
    /// The target is reachable on the (actual) PSO machine — i.e. this test
    /// *should* expose the bug.
    pub pso_allowed: bool,
    /// PerpLE-heuristic occurrences on the faulty machine.
    pub perple_hits: u64,
    /// litmus7 `user` occurrences on the faulty machine.
    pub user_hits: u64,
    /// litmus7 `timebase` occurrences on the faulty machine.
    pub timebase_hits: u64,
}

impl BugReport {
    /// True if PerpLE's verdict is correct: hits iff the bug is exposable
    /// through this test.
    pub fn perple_correct(&self) -> bool {
        let should_fire = self.tso_forbidden && self.pso_allowed;
        if should_fire {
            self.perple_hits > 0
        } else if self.tso_forbidden {
            self.perple_hits == 0
        } else {
            true // allowed targets may fire freely
        }
    }
}

/// Runs the whole convertible suite against the faulty (PSO) machine.
pub fn bugfinder(cfg: &ExperimentConfig) -> Vec<BugReport> {
    let faulty = SimConfig::default()
        .with_seed(cfg.seed ^ 0xB06)
        .with_weak_store_order(true);
    suite::convertible()
        .iter()
        .zip(suite::TABLE_II)
        .map(|(test, entry)| {
            let pso_allowed = enumerate(test, MemoryModel::Pso).condition_reachable(test);
            // Invariant: `suite::convertible()` pre-filters by
            // `is_convertible`, so conversion cannot fail here.
            let conv = Conversion::convert(test).expect("suite test converts");

            let mut runner = PerpleRunner::new(faulty.clone());
            let run = runner.run(&conv.perpetual, cfg.iterations);
            let bufs = run.bufs();
            let perple_hits = HeuristicCounter::single(&conv.target_heuristic)
                .count(&CountRequest::new(&bufs, cfg.iterations))
                .counts[0];

            let mut user = BaselineRunner::new(faulty.clone(), SyncMode::User);
            let user_hits = user.run(test, cfg.iterations).target_count;
            let mut tb = BaselineRunner::new(faulty.clone(), SyncMode::Timebase);
            let timebase_hits = tb.run(test, cfg.iterations).target_count;

            BugReport {
                name: test.name().to_owned(),
                tso_forbidden: !entry.allowed,
                pso_allowed,
                perple_hits,
                user_hits,
                timebase_hits,
            }
        })
        .collect()
}

/// Renders the bug-hunt report.
pub fn render(reports: &[BugReport], cfg: &ExperimentConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Bug hunt: machine claims x86-TSO but drains store buffers out of order ({} iterations)",
        cfg.iterations
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>12} {:>10} {:>10}  verdict",
        "test", "tso-forb.", "pso-allow", "perple-heur", "user", "timebase"
    );
    for r in reports {
        let verdict = match (r.tso_forbidden, r.pso_allowed, r.perple_hits > 0) {
            (true, true, true) => "BUG EXPOSED",
            (true, true, false) => "missed!",
            (true, false, false) => "clean (unexposable here)",
            (true, false, true) => "FALSE POSITIVE",
            (false, _, _) => "allowed target",
        };
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>10} {:>12} {:>10} {:>10}  {verdict}",
            r.name, r.tso_forbidden, r.pso_allowed, r.perple_hits, r.user_hits, r.timebase_hits
        );
    }
    let exposed = reports
        .iter()
        .filter(|r| r.tso_forbidden && r.pso_allowed && r.perple_hits > 0)
        .count();
    let exposable = reports
        .iter()
        .filter(|r| r.tso_forbidden && r.pso_allowed)
        .count();
    let _ = writeln!(
        s,
        "PerpLE exposed the injected weakness via {exposed}/{exposable} exposable tests"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::default()
            .with_iterations(2_000)
            .with_seed(0xB06)
    }

    #[test]
    fn perple_flags_exactly_the_exposable_tests() {
        let reports = bugfinder(&cfg());
        assert_eq!(reports.len(), 34);
        // mp is the canonical store-store-reordering victim.
        let mp = reports.iter().find(|r| r.name == "mp").unwrap();
        assert!(mp.tso_forbidden && mp.pso_allowed);
        assert!(
            mp.perple_hits > 0,
            "PerpLE missed the injected mp violation"
        );
        // Every verdict must be correct (no false positives/negatives).
        for r in &reports {
            assert!(
                r.perple_correct(),
                "{}: tso_forbidden={} pso_allowed={} hits={}",
                r.name,
                r.tso_forbidden,
                r.pso_allowed,
                r.perple_hits
            );
        }
    }

    #[test]
    fn perple_outpaces_user_mode_on_the_bug() {
        let reports = bugfinder(&cfg());
        let exposable: Vec<_> = reports
            .iter()
            .filter(|r| r.tso_forbidden && r.pso_allowed)
            .collect();
        assert!(!exposable.is_empty());
        for r in &exposable {
            assert!(
                r.perple_hits >= r.user_hits,
                "{}: perple {} < user {}",
                r.name,
                r.perple_hits,
                r.user_hits
            );
        }
    }

    #[test]
    fn render_summarizes_the_hunt() {
        let text = render(&bugfinder(&cfg()), &cfg());
        assert!(text.contains("BUG EXPOSED"));
        assert!(text.contains("out of order"));
    }
}
