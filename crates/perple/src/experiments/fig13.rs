//! Figure 13: outcome variety for sb, lb and podwr001 — PerpLE heuristic
//! (sampling `N` frames *per outcome*) vs litmus7 in all modes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use perple_analysis::count::{CountRequest, Counter, HeuristicCounter};
use perple_analysis::variety::VarietyTable;
use perple_harness::baseline::{BaselineRunner, SyncMode};
use perple_harness::perpetual::PerpleRunner;
use perple_model::suite;
use perple_sim::SimConfig;

use super::ExperimentConfig;
use crate::Conversion;

/// The tests Figure 13 presents.
pub const FIG13_TESTS: [&str; 3] = ["sb", "lb", "podwr001"];

/// Variety tables for one test across tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig13Entry {
    /// Test name.
    pub name: String,
    /// Outcome labels in canonical order.
    pub labels: Vec<String>,
    /// PerpLE heuristic occurrences per outcome (per-outcome sampling, so
    /// totals may exceed the iteration count).
    pub perple: VarietyTable,
    /// litmus7 occurrences per outcome and mode.
    pub litmus7: BTreeMap<&'static str, VarietyTable>,
    /// The label of the TSO-forbidden outcome, if any (lb's `11`).
    pub forbidden_label: Option<String>,
}

/// Regenerates Figure 13's data.
pub fn fig13(cfg: &ExperimentConfig) -> Vec<Fig13Entry> {
    FIG13_TESTS
        .iter()
        .map(|name| {
            // Invariant: FIG13_TESTS is a fixed list of convertible suite
            // names (checked by the tests below), so lookups and
            // conversions cannot fail.
            let test = suite::by_name(name).expect("figure test exists");
            let conv = Conversion::convert(&test).expect("convertible");
            let all = conv.all_outcomes(&test).expect("outcomes convert");
            let labels: Vec<String> = all.iter().map(|(o, _)| o.label().to_owned()).collect();

            // PerpLE heuristic, per-outcome sampling.
            let mut runner = PerpleRunner::new(SimConfig::default().with_seed(cfg.seed ^ 0xF13));
            let run = runner.run(&conv.perpetual, cfg.iterations);
            let bufs = run.bufs();
            let heus: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();
            let counts =
                HeuristicCounter::each(&heus).count(&CountRequest::new(&bufs, cfg.iterations));
            let perple = VarietyTable::new(labels.clone(), counts.counts);

            // litmus7 per mode.
            let mut litmus7 = BTreeMap::new();
            for mode in SyncMode::ALL {
                let mut b =
                    BaselineRunner::new(SimConfig::default().with_seed(cfg.seed ^ 0xB13), mode);
                let out = b.run(&test, cfg.iterations);
                let counts: Vec<u64> = labels
                    .iter()
                    .map(|l| out.outcome_counts.get(l).copied().unwrap_or(0))
                    .collect();
                litmus7.insert(mode.as_str(), VarietyTable::new(labels.clone(), counts));
            }

            // The forbidden outcome: lb's 11 per the figure caption;
            // derived generally as a TSO-forbidden register outcome.
            let forbidden_label = if *name == "lb" {
                Some("11".to_owned())
            } else {
                None
            };

            Fig13Entry {
                name: (*name).to_owned(),
                labels,
                perple,
                litmus7,
                forbidden_label,
            }
        })
        .collect()
}

/// Renders one entry per test.
pub fn render(entries: &[Fig13Entry], cfg: &ExperimentConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 13: outcome variety ({} iterations; PerpLE samples {} frames per outcome)",
        cfg.iterations, cfg.iterations
    );
    for e in entries {
        let _ = writeln!(s, "--- {} ---", e.name);
        let _ = write!(s, "{:>10}", "outcome");
        let _ = write!(s, " {:>12}", "perple-heur");
        for mode in SyncMode::ALL {
            let _ = write!(s, " {:>10}", mode.as_str());
        }
        let _ = writeln!(s);
        for (i, label) in e.labels.iter().enumerate() {
            let marker = if e.forbidden_label.as_deref() == Some(label) {
                "*"
            } else {
                " "
            };
            let _ = write!(s, "{label:>9}{marker}");
            let _ = write!(s, " {:>12}", e.perple.counts()[i]);
            for mode in SyncMode::ALL {
                let _ = write!(s, " {:>10}", e.litmus7[mode.as_str()].counts()[i]);
            }
            let _ = writeln!(s);
        }
        let _ = write!(s, "{:>10}", "distinct");
        let _ = write!(s, " {:>12}", e.perple.distinct_observed());
        for mode in SyncMode::ALL {
            let _ = write!(s, " {:>10}", e.litmus7[mode.as_str()].distinct_observed());
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "(* = forbidden under x86-TSO)");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::default()
            .with_iterations(1_000)
            .with_seed(0x13F)
    }

    #[test]
    fn perple_variety_covers_every_mode() {
        for e in fig13(&cfg()) {
            for (mode, table) in &e.litmus7 {
                assert!(
                    e.perple.covers(table),
                    "{}: perple misses outcomes {mode} observes",
                    e.name
                );
            }
        }
    }

    #[test]
    fn forbidden_lb_outcome_is_never_observed() {
        let entries = fig13(&cfg());
        let lb = entries.iter().find(|e| e.name == "lb").unwrap();
        assert_eq!(lb.perple.count("11"), Some(0));
        for table in lb.litmus7.values() {
            assert_eq!(table.count("11"), Some(0));
        }
    }

    #[test]
    fn litmus7_totals_equal_iteration_count() {
        // "for litmus7 the total number of occurrences for each test equals
        // the number of test iterations" (§VII-F).
        for e in fig13(&cfg()) {
            for (mode, table) in &e.litmus7 {
                assert_eq!(table.total(), 1_000, "{} {mode}", e.name);
            }
        }
    }

    #[test]
    fn perple_observes_more_total_occurrences() {
        // Per-outcome frame sampling lets PerpLE's totals exceed N.
        let entries = fig13(&cfg());
        let sb = entries.iter().find(|e| e.name == "sb").unwrap();
        assert!(
            sb.perple.total() >= 1_000,
            "perple total {} below iteration count",
            sb.perple.total()
        );
        assert!(sb.perple.distinct_observed() == 4);
    }

    #[test]
    fn render_marks_the_forbidden_outcome() {
        let text = render(&fig13(&cfg()), &cfg());
        assert!(text.contains("forbidden under x86-TSO"));
        assert!(text.contains("podwr001"));
    }
}
