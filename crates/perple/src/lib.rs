//! # PerpLE — the Perpetual Litmus Engine
//!
//! A Rust reproduction of *"PerpLE: Improving the Speed and Effectiveness
//! of Memory Consistency Testing"* (Melissaris, Markakis, Shaw, Martonosi —
//! MICRO 2020).
//!
//! PerpLE replaces per-iteration thread synchronization in empirical memory
//! consistency testing with **perpetual litmus tests**: threads synchronize
//! once at launch and then free-run, storing unique arithmetic-sequence
//! values (`k_mem * n_t + a`) so that every loaded value identifies the
//! iteration that produced it. After the run, an exhaustive counter scans
//! all `N^{T_L}` *frames* for outcomes of interest, or a linear heuristic
//! derives one promising frame per iteration.
//!
//! This facade crate wires the pieces together:
//!
//! | concern | crate |
//! |---|---|
//! | litmus AST, parser, suite, happens-before | [`perple_model`] |
//! | SC/TSO outcome classification (herd substitute) | [`perple_enumerate`] |
//! | simulated x86-TSO machine | [`perple_sim`] |
//! | Converter (perpetual tests + outcomes + codegen) | [`perple_convert`] |
//! | Harness (perpetual + litmus7 baseline + native) | [`perple_harness`] |
//! | counters, skew, variety, metrics | [`perple_analysis`] |
//!
//! # Quickstart
//!
//! ```
//! use perple::{Perple, SimConfig};
//! use perple_model::suite;
//!
//! // Convert and run the store-buffering test for 2000 iterations.
//! let mut engine = Perple::with_config(
//!     &suite::sb(), SimConfig::default().with_seed(42))?;
//! let result = engine.run(2_000);
//!
//! // The weak (target) outcome is observable without per-iteration
//! // synchronization, and the heuristic counter finds it in linear time.
//! assert!(result.target_heuristic.counts[0] > 0);
//! assert_eq!(result.target_heuristic.frames_examined, 2_000);
//! # Ok::<(), perple::ConvertError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiments;
pub mod servehost;

pub use error::{parse_fault_plan, PerpleError};
pub use perple_analysis::count::{
    default_workers, frame_at, frame_index, frame_space, CountRequest, CountResult, Counter,
    CounterKind, ExhaustiveCounter, HeuristicCounter,
};
pub use perple_analysis::rf::RfCounter;
pub use perple_analysis::{jsonout, metrics, modelmine, skew, stats, variety};
pub use perple_campaign as campaign;
pub use perple_convert::{
    Conversion, ConvertError, HeuristicOutcome, PerpetualOutcome, PerpetualTest,
};
pub use perple_enumerate::{classify, enumerate, Classification, MemoryModel};
pub use perple_harness::baseline::{BaselineRun, BaselineRunner, SyncMode};
pub use perple_harness::native;
pub use perple_harness::perpetual::{PerpleRun, PerpleRunner};
pub use perple_lint as lint;
pub use perple_model::{suite, LitmusTest, ModelError, Outcome};
pub use perple_obs as obs;
pub use perple_serve as serve;
pub use perple_sim::{Budget, FaultKind, FaultPlan, FaultSpec, SimConfig};
pub use servehost::{summary_json, validate_store_root, CampaignRunner};

pub use experiments::Parallelism;
pub use perple_analysis::metrics::StageTimings;

/// One-stop engine: conversion plus harness plus counters for one test.
#[derive(Debug, Clone)]
pub struct Perple {
    test: LitmusTest,
    conversion: Conversion,
    runner: PerpleRunner,
    exhaustive_frame_cap: Option<u64>,
    workers: usize,
}

/// Everything one perpetual run produces: buffers, timing, and target
/// counts from both counters.
#[derive(Debug, Clone)]
pub struct PerpleResult {
    /// The raw run (buffers + execution cycles).
    pub run: PerpleRun,
    /// Target-outcome count from the linear heuristic counter.
    pub target_heuristic: CountResult,
    /// Target-outcome count from the exhaustive counter (possibly
    /// frame-capped; see [`Perple::set_exhaustive_frame_cap`]).
    pub target_exhaustive: CountResult,
}

impl Perple {
    /// Converts `test` and prepares a runner with default configuration.
    ///
    /// # Errors
    /// Returns [`ConvertError`] for non-convertible tests (§V-C).
    pub fn new(test: &LitmusTest) -> Result<Self, ConvertError> {
        Self::with_config(test, SimConfig::default())
    }

    /// Converts `test` with an explicit simulator configuration.
    ///
    /// # Errors
    /// Returns [`ConvertError`] for non-convertible tests (§V-C).
    pub fn with_config(test: &LitmusTest, config: SimConfig) -> Result<Self, ConvertError> {
        let conversion = Conversion::convert(test)?;
        Ok(Self {
            test: test.clone(),
            conversion,
            runner: PerpleRunner::new(config),
            exhaustive_frame_cap: None,
            workers: 1,
        })
    }

    /// The original test.
    pub fn test(&self) -> &LitmusTest {
        &self.test
    }

    /// The conversion artifacts (perpetual program, target conditions).
    pub fn conversion(&self) -> &Conversion {
        &self.conversion
    }

    /// Caps the exhaustive counter's frame scan (`T_L = 3` tests examine
    /// `N^3` frames; the cap keeps them tractable, reported as truncated).
    pub fn set_exhaustive_frame_cap(&mut self, cap: Option<u64>) {
        self.exhaustive_frame_cap = cap;
    }

    /// Shards the counters over `workers` threads (1 = serial, the
    /// default). Counts are bit-identical at every setting; only wall
    /// time changes.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Runs `n` perpetual iterations and applies both target counters.
    pub fn run(&mut self, n: u64) -> PerpleResult {
        let run = self.runner.run(&self.conversion.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n).with_workers(self.workers);
        let target_heuristic =
            HeuristicCounter::single(&self.conversion.target_heuristic).count(&req);
        let target_exhaustive = ExhaustiveCounter::single(&self.conversion.target_exhaustive)
            .count(&req.with_frame_cap(self.exhaustive_frame_cap));
        PerpleResult {
            run,
            target_heuristic,
            target_exhaustive,
        }
    }

    /// Runs `n` iterations and applies only the heuristic counter (the
    /// practical configuration the paper recommends after §VII-B).
    pub fn run_heuristic_only(&mut self, n: u64) -> (PerpleRun, CountResult) {
        let run = self.runner.run(&self.conversion.perpetual, n);
        let bufs = run.bufs();
        let count = HeuristicCounter::single(&self.conversion.target_heuristic)
            .count(&CountRequest::new(&bufs, n).with_workers(self.workers));
        (run, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_finds_sb_target_with_both_counters() {
        let mut p = Perple::with_config(&suite::sb(), SimConfig::default().with_seed(1)).unwrap();
        let r = p.run(2_000);
        assert!(r.target_heuristic.counts[0] > 0);
        assert!(r.target_exhaustive.counts[0] >= r.target_heuristic.counts[0]);
        assert_eq!(r.target_exhaustive.frames_examined, 2_000 * 2_000);
    }

    #[test]
    fn heuristic_never_finds_what_exhaustive_misses() {
        for name in ["sb", "amd3", "iwp24", "mp", "amd5"] {
            let t = suite::by_name(name).unwrap();
            let mut p = Perple::with_config(&t, SimConfig::default().with_seed(3)).unwrap();
            let r = p.run(400);
            assert!(
                r.target_heuristic.counts[0] <= r.target_exhaustive.counts[0],
                "{name}"
            );
        }
    }

    #[test]
    fn heuristic_accuracy_found_iff_exhaustive_found() {
        // §VII-D: whenever the exhaustive counter finds the target, the
        // heuristic must find it too (not necessarily as often).
        for (i, t) in suite::allowed_targets().into_iter().enumerate() {
            let mut p =
                Perple::with_config(&t, SimConfig::default().with_seed(100 + i as u64)).unwrap();
            p.set_exhaustive_frame_cap(Some(2_000_000));
            let r = p.run(600);
            if r.target_exhaustive.counts[0] > 0 {
                assert!(
                    r.target_heuristic.counts[0] > 0,
                    "{}: exhaustive found {} but heuristic found none",
                    t.name(),
                    r.target_exhaustive.counts[0]
                );
            }
        }
    }

    #[test]
    fn forbidden_targets_are_never_counted() {
        // No false positives (§VII-A): the simulator is TSO, so forbidden
        // targets must stay at zero under both counters.
        for name in ["mp", "lb", "amd5", "amd10", "iriw", "wrc", "n4", "n5"] {
            let t = suite::by_name(name).unwrap();
            let mut p = Perple::with_config(&t, SimConfig::default().with_seed(7)).unwrap();
            p.set_exhaustive_frame_cap(Some(1_000_000));
            let r = p.run(300);
            assert_eq!(r.target_heuristic.counts[0], 0, "{name} (heuristic)");
            assert_eq!(r.target_exhaustive.counts[0], 0, "{name} (exhaustive)");
        }
    }

    #[test]
    fn worker_count_does_not_change_engine_results() {
        let mut serial =
            Perple::with_config(&suite::sb(), SimConfig::default().with_seed(9)).unwrap();
        let mut parallel =
            Perple::with_config(&suite::sb(), SimConfig::default().with_seed(9)).unwrap();
        parallel.set_workers(7);
        let a = serial.run(800);
        let b = parallel.run(800);
        assert_eq!(a.target_heuristic.counts, b.target_heuristic.counts);
        assert_eq!(a.target_exhaustive.counts, b.target_exhaustive.counts);
        assert_eq!(a.target_exhaustive.evals, b.target_exhaustive.evals);
    }

    #[test]
    fn non_convertible_tests_are_rejected_by_the_engine() {
        let co = suite::by_name("2+2w").unwrap();
        assert_eq!(Perple::new(&co).unwrap_err(), ConvertError::MemoryCondition);
    }

    #[test]
    fn frame_cap_reports_truncation() {
        let mut p = Perple::with_config(&suite::sb(), SimConfig::default()).unwrap();
        p.set_exhaustive_frame_cap(Some(100));
        let r = p.run(50);
        assert!(r.target_exhaustive.truncated);
        assert_eq!(r.target_exhaustive.frames_examined, 100);
    }

    #[test]
    fn run_heuristic_only_skips_the_quadratic_scan() {
        let mut p = Perple::with_config(&suite::sb(), SimConfig::default()).unwrap();
        let (run, count) = p.run_heuristic_only(500);
        assert_eq!(run.iterations, 500);
        assert_eq!(count.frames_examined, 500);
    }
}
