//! End-to-end HTTP tests against an in-process server with a stub
//! [`SpecRunner`]: streaming order, backpressure, drain semantics, and
//! a sustained-load run. The real engine-backed equivalence tests live
//! in the `perple` crate (which owns the engine glue); here the runner
//! is synthetic so the protocol and queue behavior are isolated.

use perple_serve::server::{Bind, Server, ServerConfig};
use perple_serve::{client, SpecRunner};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A gate the blocking stub parks on until the test opens it.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn wait(&self) {
        let mut g = self.open.lock().unwrap();
        while !*g {
            g = self.cv.wait(g).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Emits three records out of slot order (2, 0, 1) so the server's
/// reorder buffer is what produces the ordered stream; optionally parks
/// on a gate first (for backpressure tests).
struct StubRunner {
    gate: Option<Arc<Gate>>,
}

impl SpecRunner for StubRunner {
    fn run(
        &self,
        spec: &str,
        _store_root: &Path,
        on_record: &mut dyn FnMut(usize, Option<String>),
    ) -> Result<String, String> {
        if let Some(gate) = &self.gate {
            gate.wait();
        }
        if spec.contains("explode") {
            return Err("synthetic runner failure".into());
        }
        on_record(2, Some("{\"seed\":3}".into()));
        on_record(0, Some("{\"seed\":1}".into()));
        on_record(1, Some("{\"seed\":2}".into()));
        Ok("{\"items\":3,\"hits\":1,\"executed\":2,\"lost\":0}".into())
    }

    fn resume(
        &self,
        _store_root: &Path,
        id: &str,
        _on_record: &mut dyn FnMut(usize, Option<String>),
    ) -> Result<String, String> {
        Err(format!("stub cannot resume {id}"))
    }

    fn pending(&self, _store_root: &Path) -> Result<Vec<String>, String> {
        Ok(Vec::new())
    }
}

fn boot(
    bind: Bind,
    workers: usize,
    capacity: usize,
    quota: usize,
    gate: Option<Arc<Gate>>,
) -> (
    client::Target,
    perple_serve::server::ShutdownHandle,
    std::thread::JoinHandle<Result<(), perple_serve::ServeError>>,
) {
    let mut config = ServerConfig::new(bind, workers, PathBuf::from("/nonexistent-store"));
    config.queue_capacity = capacity;
    config.per_client_quota = quota;
    let server = Server::bind(config, Arc::new(StubRunner { gate })).unwrap();
    let target = match server.local_addr() {
        s if s.contains(':') => client::Target::Tcp(s.to_string()),
        s => client::Target::Unix(PathBuf::from(s)),
    };
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve());
    (target, handle, join)
}

fn stats_field(target: &client::Target, field: &str) -> u64 {
    let out = client::get(target, "/stats").unwrap();
    let v = perple_analysis::jsonout::parse(&out.lines[0]).unwrap();
    v.get("queue")
        .and_then(|q| q.get(field))
        .and_then(perple_analysis::jsonout::Json::as_u64)
        .unwrap_or(0)
}

fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn tcp_submit_streams_reordered_records_then_summary() {
    let (target, handle, join) = boot(Bind::Tcp("127.0.0.1:0".into()), 2, 8, 8, None);
    let mut streamed = Vec::new();
    let out = client::submit(
        &target,
        "name=x\n",
        "t1",
        true,
        Some(&mut |l: &str| streamed.push(l.to_string())),
    )
    .unwrap();
    assert_eq!(out.status, 200);
    // Stub emitted slots 2,0,1; the stream must be slot-ordered.
    assert_eq!(
        out.lines[..3],
        ["{\"seed\":1}", "{\"seed\":2}", "{\"seed\":3}"]
    );
    assert!(out.lines[3].starts_with("{\"job\":\"job-1\",\"summary\":{\"items\":3"));
    assert_eq!(streamed, out.lines);

    // Status endpoint sees the retained completed job.
    let st = client::get(&target, "/jobs/job-1").unwrap();
    assert_eq!(st.status, 200);
    assert!(st.lines[0].contains("\"state\":\"done\""));
    assert!(client::get(&target, "/jobs/job-999").unwrap().status == 404);

    // Metrics aggregate the summary counters.
    let m = client::get(&target, "/metrics").unwrap();
    let v = perple_analysis::jsonout::parse(&m.lines[0]).unwrap();
    let cache = v.get("cache").unwrap();
    assert_eq!(cache.get("items").unwrap().as_u64(), Some(3));
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("hit_rate_permille").unwrap().as_u64(), Some(333));
    assert!(v.get("latency_us").unwrap().get("item_p50").is_some());
    assert!(v.get("metrics").unwrap().get("counters").is_some());

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn unix_socket_roundtrip_and_failure_line() {
    let dir = std::env::temp_dir().join(format!("perple-serve-ux-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("perple.sock");
    let (target, handle, join) = boot(Bind::Unix(sock.clone()), 1, 8, 8, None);
    let ok = client::submit(&target, "name=x\n", "u1", true, None).unwrap();
    assert_eq!(ok.status, 200);
    let bad = client::submit(&target, "explode\n", "u1", true, None).unwrap();
    assert_eq!(bad.status, 200); // stream started before the job failed
    assert!(bad
        .lines
        .last()
        .unwrap()
        .contains("\"error\":\"synthetic runner failure\""));
    handle.shutdown();
    join.join().unwrap().unwrap();
    // Socket file is removed on clean drain.
    assert!(!sock.exists());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn backpressure_rejects_with_429_and_retry_after() {
    let gate = Gate::new();
    let (target, handle, join) = boot(
        Bind::Tcp("127.0.0.1:0".into()),
        1,
        1,
        1,
        Some(Arc::clone(&gate)),
    );
    // First job: accepted, then claimed by the single (gated) worker.
    let a = client::submit(&target, "name=a\n", "alice", false, None).unwrap();
    assert_eq!(a.status, 202);
    wait_until(2000, || stats_field(&target, "running") == 1);
    // Second client fills the queue slot.
    let b = client::submit(&target, "name=b\n", "bob", false, None).unwrap();
    assert_eq!(b.status, 202);
    // Queue is now full: third client bounces with Retry-After.
    let c = client::submit(&target, "name=c\n", "carol", false, None).unwrap();
    assert_eq!(c.status, 429);
    assert_eq!(c.retry_after.as_deref(), Some("1"));
    assert!(c.lines[0].contains("queue-full"));
    // Alice is at her quota (1 running) regardless of queue space.
    let a2 = client::submit(&target, "name=a2\n", "alice", false, None).unwrap();
    assert_eq!(a2.status, 429);
    assert!(a2.lines[0].contains("quota-exceeded"));

    gate.open();
    wait_until(2000, || stats_field(&target, "finished") == 2);
    // With capacity freed, the same client is admitted again.
    let a3 = client::submit(&target, "name=a3\n", "alice", true, None).unwrap();
    assert_eq!(a3.status, 200);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn drain_finishes_admitted_jobs_before_exit() {
    let gate = Gate::new();
    let (target, handle, join) = boot(
        Bind::Tcp("127.0.0.1:0".into()),
        1,
        8,
        8,
        Some(Arc::clone(&gate)),
    );
    let a = client::submit(&target, "name=a\n", "alice", false, None).unwrap();
    assert_eq!(a.status, 202);
    let b = client::submit(&target, "name=b\n", "bob", false, None).unwrap();
    assert_eq!(b.status, 202);
    handle.shutdown();
    // Admitted work must finish during drain, not be dropped.
    std::thread::sleep(Duration::from_millis(50));
    gate.open();
    join.join().unwrap().unwrap();
}

#[test]
fn sustained_load_thousand_submissions() {
    let (target, handle, join) = boot(Bind::Tcp("127.0.0.1:0".into()), 4, 64, 8, None);
    let mut clients = Vec::new();
    for t in 0..8 {
        let target = target.clone();
        clients.push(std::thread::spawn(move || {
            let mut ok = 0u64;
            for i in 0..125 {
                // wait=1 keeps each client's in-flight at 1, so no
                // rejection is expected; every line streams back.
                let out = client::submit(
                    &target,
                    &format!("name=load-{t}-{i}\n"),
                    &format!("loader-{t}"),
                    true,
                    None,
                )
                .unwrap();
                assert_eq!(out.status, 200, "submission {t}/{i} failed");
                assert_eq!(out.lines.len(), 4);
                ok += 1;
            }
            ok
        }));
    }
    let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(total, 1000);
    wait_until(2000, || stats_field(&target, "finished") == 1000);
    assert_eq!(stats_field(&target, "rejected"), 0);
    // Registry retention bounds memory: early jobs are evicted, recent
    // ones are still queryable.
    assert_eq!(client::get(&target, "/jobs/job-1").unwrap().status, 404);
    assert_eq!(client::get(&target, "/jobs/job-1000").unwrap().status, 200);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn clone_target() {
    // client::Target is passed across threads in the load test; keep it
    // Clone + Send by construction.
    fn assert_send<T: Send + Clone>() {}
    assert_send::<client::Target>();
}
