//! Quota accounting under the degraded cache-write path.
//!
//! When a transient IO fault outlives the engine's bounded-backoff
//! retries at a cache-write boundary, the item degrades to uncached
//! execution (`store_cache_write_drops`) instead of failing the run.
//! The queue's in-flight ledger must decrement exactly once for such a
//! job — the degraded path, the error path, and any overzealous cleanup
//! all converge on [`JobQueue::finish`], whose atomic guard makes the
//! decrement idempotent. This sweeps `transient@k` over every IO
//! boundary of a small campaign and checks the ledger at each k.

use perple_campaign::engine::{
    run_campaign_with, CampaignItem, DurabilityPolicy, ExecOutcome, RunMeta, StageWallMs,
};
use perple_campaign::io::{CrashPlan, StoreIo};
use perple_campaign::spec::CampaignSpec;
use perple_campaign::store::OutcomeRecord;
use perple_campaign::{ArtifactCache, RunStore};
use perple_serve::queue::JobQueue;
use std::fs;
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perple-serve-quota-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn item(test: &str, seed: u64) -> CampaignItem {
    let mut h = perple_campaign::Hasher::new();
    h.field("test", test).field_u64("seed", seed);
    CampaignItem {
        test: test.to_owned(),
        seed,
        fingerprint: h.finish(),
    }
}

fn outcome(it: &CampaignItem) -> ExecOutcome {
    ExecOutcome {
        record: OutcomeRecord {
            test: it.test.clone(),
            seed: it.seed,
            fingerprint: it.fingerprint.hex(),
            forbidden: false,
            heuristic: 7,
            exhaustive: 7,
            degraded: false,
            iterations: 100,
            run_complete: true,
            faults: 0,
            digest: it.seed ^ 7,
            quarantined: false,
            fault_kind: None,
        },
        cacheable: true,
        wall: StageWallMs::default(),
    }
}

fn meta() -> RunMeta {
    RunMeta {
        created_unix_ms: 1,
        git: "test".to_owned(),
        lint: None,
    }
}

/// Runs the fixed two-item campaign against a fresh store through `io`,
/// returning the engine result (Ok = completed, possibly degraded).
fn run_once(root: &PathBuf, io: StoreIo) -> Result<(), String> {
    let store = RunStore::open_with(root.clone(), io.clone()).map_err(|e| e.to_string())?;
    let cache = ArtifactCache::open_with(root, io).map_err(|e| e.to_string())?;
    let spec = CampaignSpec::named("quota-sweep");
    let items = vec![item("sb", 1), item("mp", 1)];
    run_campaign_with(
        &store,
        &cache,
        &spec,
        &items,
        &meta(),
        DurabilityPolicy::default(),
        |batch| batch.iter().map(|i| Some(outcome(i))).collect(),
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

#[test]
fn degraded_cache_write_still_decrements_in_flight_exactly_once() {
    perple_obs::metrics::set_enabled(true);

    // Probe pass: count the IO boundaries of the campaign so the sweep
    // covers every one of them.
    let probe_root = tmp_root("probe");
    let probe_io = StoreIo::unplanned();
    run_once(&probe_root, probe_io.clone()).unwrap();
    let boundaries = probe_io.boundaries();
    assert!(
        boundaries > 4,
        "campaign exercised only {boundaries} IO ops"
    );
    let _ = fs::remove_dir_all(&probe_root);

    let mut degraded_ks = 0u64;
    for k in 0..boundaries {
        let root = tmp_root(&format!("k{k}"));
        let queue = JobQueue::new(16, 1);
        let job = queue.submit("sweeper", "quota-sweep".into()).unwrap();
        let claimed = queue.claim().unwrap();
        assert_eq!(claimed.id, job.id);
        // While the job runs, the client's quota of 1 is exhausted.
        assert!(queue.submit("sweeper", "again".into()).is_err());

        // 4 consecutive failures beat the engine's 3 bounded retries, so
        // boundary k genuinely fails; non-crash failures at cache-write
        // boundaries degrade, others surface as storage errors.
        let before = perple_obs::metrics::snapshot();
        let result = run_once(&root, StoreIo::new(CrashPlan::transient_at(k, 4)));
        let delta = perple_obs::metrics::snapshot().delta_from(&before);
        if result.is_ok() && delta.get("store_cache_write_drops") > 0 {
            degraded_ks += 1;
        }

        // Worker convergence: success, degraded success, and failure
        // paths all settle the job once; a second settle is inert.
        assert!(queue.finish(&claimed), "first finish must account");
        assert!(
            !queue.finish(&claimed),
            "k={k}: double finish must be inert"
        );
        let s = queue.stats();
        assert_eq!(
            (s.queued, s.running, s.clients),
            (0, 0, 0),
            "k={k}: ledger not clean after finish (result={result:?})"
        );
        // The quota slot is actually free again.
        queue
            .submit("sweeper", "after".into())
            .unwrap_or_else(|e| panic!("k={k}: quota still held after finish: {e:?}"));
        let _ = fs::remove_dir_all(&root);
    }
    assert!(
        degraded_ks > 0,
        "sweep never hit the degraded cache-write path ({boundaries} boundaries)"
    );
}
