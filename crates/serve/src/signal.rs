//! SIGTERM/SIGINT → atomic drain flag.
//!
//! This module carries the only `unsafe` in the workspace: registering
//! an `extern "C"` handler through libc's `signal(2)` (already linked by
//! `std`, so no new dependency). The handler itself does the one thing
//! that is async-signal-safe in Rust — a relaxed atomic store — and the
//! accept loop polls [`shutdown_requested`] between accepts to begin a
//! graceful drain.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `SIGINT` (ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill; what CI and process supervisors send).
pub const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

extern "C" {
    // libc signal(2); std links libc on every supported unix target.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the drain handler for SIGTERM and SIGINT. Idempotent.
pub fn install() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// True once a drain signal has arrived (or [`request_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Programmatic drain trigger — what the handler does, callable from
/// tests and from in-process embedders without raising a real signal.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clears the flag (tests only; a real server exits after drain).
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}
