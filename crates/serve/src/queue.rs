//! The bounded job queue between the accept loop and the worker pool.
//!
//! Admission control happens at submit time: a full queue or an
//! exhausted per-client quota rejects immediately (the server maps these
//! to 429 with `Retry-After`) instead of letting memory grow with
//! arrival rate. Queued jobs are sharded by submitting client and
//! claimed round-robin across shards, so one chatty client cannot starve
//! the others no matter how it interleaves its submissions.
//!
//! Accounting is exactly-once by construction: [`JobQueue::finish`]
//! flips the job's `accounted` flag atomically and only the winner
//! decrements the in-flight counters. This is what keeps the quota
//! ledger correct even on the degraded path where an item falls back to
//! uncached execution after a cache write failure — however many times
//! the worker's error handling converges on `finish`, the decrement
//! happens once.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the summary JSON is available.
    Done,
    /// The runner reported an error (message attached).
    Failed(String),
}

impl JobState {
    /// Stable lowercase tag for JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Progress a job accumulates while running: the contiguous prefix of
/// emitted record lines plus the terminal state.
#[derive(Debug)]
struct Progress {
    state: JobState,
    records: Vec<String>,
    summary: Option<String>,
}

/// What a streaming reader gets from [`Job::wait_next`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Next {
    /// The next record line (reader advances its cursor by one).
    Record(String),
    /// No more records; the job completed with this summary JSON.
    Done(String),
    /// No more records; the job failed with this message.
    Failed(String),
}

/// One submitted campaign job. Shared between the queue, the worker
/// executing it, and any connections streaming its records.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id (`job-<n>`).
    pub id: String,
    /// Submitting client (from the `client` query key; defaults applied
    /// by the server).
    pub client: String,
    /// The raw campaign spec text to run.
    pub spec: String,
    accounted: AtomicBool,
    progress: Mutex<Progress>,
    cv: Condvar,
}

impl Job {
    fn new(id: String, client: String, spec: String) -> Arc<Job> {
        Arc::new(Job {
            id,
            client,
            spec,
            accounted: AtomicBool::new(false),
            progress: Mutex::new(Progress {
                state: JobState::Queued,
                records: Vec::new(),
                summary: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Marks the job running (worker picked it up).
    pub fn set_running(&self) {
        let mut p = self.progress.lock().unwrap();
        p.state = JobState::Running;
        self.cv.notify_all();
    }

    /// Appends one emitted record line and wakes streaming readers.
    pub fn push_record(&self, line: String) {
        let mut p = self.progress.lock().unwrap();
        p.records.push(line);
        self.cv.notify_all();
    }

    /// Terminal success: store the summary JSON.
    pub fn complete(&self, summary: String) {
        let mut p = self.progress.lock().unwrap();
        p.state = JobState::Done;
        p.summary = Some(summary);
        self.cv.notify_all();
    }

    /// Terminal failure: store the error message.
    pub fn fail(&self, message: String) {
        let mut p = self.progress.lock().unwrap();
        p.state = JobState::Failed(message);
        self.cv.notify_all();
    }

    /// Current `(state, records emitted so far, summary)` without
    /// blocking.
    pub fn snapshot(&self) -> (JobState, usize, Option<String>) {
        let p = self.progress.lock().unwrap();
        (p.state.clone(), p.records.len(), p.summary.clone())
    }

    /// Blocks until there is a record at index `cursor` or the job
    /// reaches a terminal state with no further records.
    pub fn wait_next(&self, cursor: usize) -> Next {
        let mut p = self.progress.lock().unwrap();
        loop {
            if cursor < p.records.len() {
                return Next::Record(p.records[cursor].clone());
            }
            match &p.state {
                JobState::Done => {
                    return Next::Done(p.summary.clone().unwrap_or_else(|| "{}".into()))
                }
                JobState::Failed(m) => return Next::Failed(m.clone()),
                _ => p = self.cv.wait(p).unwrap(),
            }
        }
    }
}

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity: back off and retry.
    QueueFull,
    /// This client already has its quota of jobs queued or running.
    QuotaExceeded,
    /// The server is draining after SIGTERM; no new work is accepted.
    Draining,
}

impl SubmitError {
    /// Stable lowercase tag for JSON error bodies.
    pub fn name(self) -> &'static str {
        match self {
            SubmitError::QueueFull => "queue-full",
            SubmitError::QuotaExceeded => "quota-exceeded",
            SubmitError::Draining => "draining",
        }
    }
}

/// Point-in-time queue counters for the stats/metrics endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted and waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Configured queue capacity.
    pub capacity: usize,
    /// Configured per-client in-flight quota.
    pub per_client_quota: usize,
    /// Distinct clients with work queued or running.
    pub clients: usize,
    /// True once drain has begun.
    pub draining: bool,
    /// Lifetime accepted submissions.
    pub submitted: u64,
    /// Lifetime rejected submissions (full/quota/draining).
    pub rejected: u64,
    /// Lifetime completed jobs (success or failure).
    pub finished: u64,
}

const SHARDS: usize = 8;

struct Inner {
    shards: [VecDeque<Arc<Job>>; SHARDS],
    cursor: usize,
    queued: usize,
    running: usize,
    in_flight: HashMap<String, usize>,
    draining: bool,
    next_id: u64,
    submitted: u64,
    rejected: u64,
    finished: u64,
}

/// The bounded, client-sharded job queue.
pub struct JobQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
    per_client_quota: usize,
}

fn shard_of(client: &str) -> usize {
    // FNV-1a; any stable spread over SHARDS will do.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl JobQueue {
    /// A queue admitting at most `capacity` queued jobs, with at most
    /// `per_client_quota` jobs queued-or-running per client.
    pub fn new(capacity: usize, per_client_quota: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                shards: Default::default(),
                cursor: 0,
                queued: 0,
                running: 0,
                in_flight: HashMap::new(),
                draining: false,
                next_id: 1,
                submitted: 0,
                rejected: 0,
                finished: 0,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            per_client_quota: per_client_quota.max(1),
        }
    }

    /// Admission-controlled submit. On success the job is owned by the
    /// queue (and by the returned handle for status/streaming).
    pub fn submit(&self, client: &str, spec: String) -> Result<Arc<Job>, SubmitError> {
        let mut g = self.inner.lock().unwrap();
        if g.draining {
            g.rejected += 1;
            return Err(SubmitError::Draining);
        }
        // Quota first: a client over its own limit hears about that
        // even when the shared queue also happens to be full.
        let flying = g.in_flight.get(client).copied().unwrap_or(0);
        if flying >= self.per_client_quota {
            g.rejected += 1;
            return Err(SubmitError::QuotaExceeded);
        }
        if g.queued >= self.capacity {
            g.rejected += 1;
            return Err(SubmitError::QueueFull);
        }
        let id = format!("job-{}", g.next_id);
        g.next_id += 1;
        let job = Job::new(id, client.to_string(), spec);
        g.shards[shard_of(client)].push_back(Arc::clone(&job));
        g.queued += 1;
        *g.in_flight.entry(client.to_string()).or_insert(0) += 1;
        g.submitted += 1;
        self.cv.notify_one();
        Ok(job)
    }

    /// Worker side: blocks for the next job, round-robin across client
    /// shards. Returns `None` exactly when the queue is draining and
    /// empty — the worker's signal to exit.
    pub fn claim(&self) -> Option<Arc<Job>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.queued > 0 {
                for step in 0..SHARDS {
                    let idx = (g.cursor + step) % SHARDS;
                    if let Some(job) = g.shards[idx].pop_front() {
                        g.cursor = (idx + 1) % SHARDS;
                        g.queued -= 1;
                        g.running += 1;
                        job.set_running();
                        return Some(job);
                    }
                }
                unreachable!("queued count disagrees with shards");
            }
            if g.draining {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Settles a claimed job's accounting. Exactly-once: the first call
    /// per job decrements the in-flight ledgers and returns `true`;
    /// every later call is a no-op returning `false`. Call it from every
    /// exit path of the worker — success, failure, and the degraded
    /// cache-write-drop path alike — without worrying about overlap.
    pub fn finish(&self, job: &Job) -> bool {
        if job.accounted.swap(true, Ordering::SeqCst) {
            return false;
        }
        let mut g = self.inner.lock().unwrap();
        g.running = g.running.saturating_sub(1);
        if let Some(n) = g.in_flight.get_mut(&job.client) {
            *n -= 1;
            if *n == 0 {
                g.in_flight.remove(&job.client);
            }
        }
        g.finished += 1;
        self.cv.notify_all();
        true
    }

    /// Begins drain: no new submissions, workers exit once the queue is
    /// empty.
    pub fn drain(&self) {
        let mut g = self.inner.lock().unwrap();
        g.draining = true;
        self.cv.notify_all();
    }

    /// True once [`JobQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> QueueStats {
        let g = self.inner.lock().unwrap();
        QueueStats {
            queued: g.queued,
            running: g.running,
            capacity: self.capacity,
            per_client_quota: self.per_client_quota,
            clients: g.in_flight.len(),
            draining: g.draining,
            submitted: g.submitted,
            rejected: g.rejected,
            finished: g.finished,
        }
    }

    /// Blocks until every queued and running job has finished. Only
    /// meaningful after [`JobQueue::drain`].
    pub fn wait_idle(&self) {
        let mut g = self.inner.lock().unwrap();
        while g.queued > 0 || g.running > 0 {
            g = self.cv.wait(g).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_and_quota_reject_at_the_door() {
        let q = JobQueue::new(2, 8);
        q.submit("a", "s1".into()).unwrap();
        q.submit("b", "s2".into()).unwrap();
        assert_eq!(
            q.submit("c", "s3".into()).unwrap_err(),
            SubmitError::QueueFull
        );

        let q = JobQueue::new(16, 1);
        q.submit("a", "s1".into()).unwrap();
        assert_eq!(
            q.submit("a", "s2".into()).unwrap_err(),
            SubmitError::QuotaExceeded
        );
        // A different client is unaffected by a's quota.
        q.submit("b", "s3".into()).unwrap();
        let s = q.stats();
        assert_eq!((s.submitted, s.rejected, s.queued), (2, 1, 2));
    }

    #[test]
    fn quota_frees_only_after_finish_and_exactly_once() {
        let q = JobQueue::new(16, 1);
        let job = q.submit("a", "s1".into()).unwrap();
        let claimed = q.claim().unwrap();
        assert_eq!(claimed.id, job.id);
        // Running still counts against the quota.
        assert_eq!(
            q.submit("a", "s2".into()).unwrap_err(),
            SubmitError::QuotaExceeded
        );
        assert!(q.finish(&claimed));
        // Double-finish must not double-decrement.
        assert!(!q.finish(&claimed));
        let s = q.stats();
        assert_eq!((s.queued, s.running, s.clients), (0, 0, 0));
        q.submit("a", "s3".into()).unwrap();
    }

    #[test]
    fn claim_is_round_robin_across_clients() {
        let q = JobQueue::new(64, 64);
        // Client "a" floods first; "b" submits one job afterwards.
        for i in 0..5 {
            q.submit("a", format!("a{i}")).unwrap();
        }
        q.submit("b", "b0".into()).unwrap();
        let mut order = Vec::new();
        for _ in 0..6 {
            let j = q.claim().unwrap();
            order.push(j.client.clone());
            q.finish(&j);
        }
        // "b" must be served before "a" drains completely.
        let b_pos = order.iter().position(|c| c == "b").unwrap();
        assert!(b_pos < 5, "round-robin starved client b: {order:?}");
    }

    #[test]
    fn drain_rejects_new_work_and_releases_workers() {
        let q = Arc::new(JobQueue::new(8, 8));
        q.submit("a", "s1".into()).unwrap();
        q.drain();
        assert_eq!(
            q.submit("a", "s2".into()).unwrap_err(),
            SubmitError::Draining
        );
        // The already-queued job is still claimable; after it, claim
        // returns None.
        let j = q.claim().unwrap();
        q.finish(&j);
        assert!(q.claim().is_none());
        q.wait_idle();
    }

    #[test]
    fn streaming_readers_see_records_then_summary() {
        let q = JobQueue::new(8, 8);
        let job = q.submit("a", "s".into()).unwrap();
        let reader = {
            let job = Arc::clone(&job);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut cursor = 0usize;
                loop {
                    match job.wait_next(cursor) {
                        Next::Record(r) => {
                            got.push(r);
                            cursor += 1;
                        }
                        Next::Done(s) => return (got, s),
                        Next::Failed(m) => panic!("unexpected failure: {m}"),
                    }
                }
            })
        };
        let worker = q.claim().unwrap();
        worker.push_record("{\"r\":1}".into());
        worker.push_record("{\"r\":2}".into());
        worker.complete("{\"summary\":true}".into());
        q.finish(&worker);
        let (got, summary) = reader.join().unwrap();
        assert_eq!(got, vec!["{\"r\":1}", "{\"r\":2}"]);
        assert_eq!(summary, "{\"summary\":true}");
    }
}
