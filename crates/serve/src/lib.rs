//! # perple-serve
//!
//! A zero-dependency campaign submission server for the PerpLE
//! reproduction: `perple serve` turns the batch campaign engine into a
//! long-lived service that accepts campaign spec submissions over TCP or
//! a Unix domain socket, multiplexes them through one shared
//! content-addressed [`perple_campaign::ArtifactCache`] and journaled
//! [`perple_campaign::RunStore`], and streams per-item outcome records
//! back to the submitter as chunked JSONL — each line byte-identical to
//! the record the batch `perple campaign run` path would have written to
//! `items.json`.
//!
//! Everything is `std`-only by design (mirroring the workspace-wide
//! zero-dependency rule): the HTTP/1.1 subset in [`http`] is hand-rolled,
//! the bounded job queue in [`queue`] is a single mutex + condvar with
//! per-client admission quotas, and [`signal`] installs the only `unsafe`
//! block in the workspace (an `extern "C"` SIGTERM/SIGINT handler that
//! flips an atomic flag) so that the binary crates can keep
//! `#![forbid(unsafe_code)]`.
//!
//! The crate is engine-agnostic the same way `perple-campaign` is: it
//! never converts, simulates, or counts anything. The embedding crate
//! supplies a [`SpecRunner`] — the `perple` facade implements it on top
//! of its resilient suite pool — and the server's worker threads drive
//! submissions through it. Graceful drain on SIGTERM relies on the
//! campaign engine's write-ahead journal: in-flight items are either
//! finished or journaled before exit, so `perple campaign fsck` finds
//! nothing to repair and a restarted server resumes them without
//! re-executing completed work.

// `deny` rather than the workspace-usual `forbid`: the `signal` module
// carries the one permitted `#[allow(unsafe_code)]` for its `extern "C"`
// handler registration, and `forbid` cannot be locally lifted.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod queue;
pub mod server;
pub mod signal;

pub use client::{Outcome as ClientOutcome, Target};
pub use http::{ChunkedWriter, Request, Response};
pub use queue::{Job, JobQueue, JobState, QueueStats, SubmitError};
pub use server::{Bind, Server, ServerConfig};

use std::fmt;
use std::path::Path;

/// What a serve worker needs from the embedding crate: run (or resume) a
/// campaign spec against a store, reporting each finished item through a
/// callback. Object-safe so the server can hold it as `dyn SpecRunner`
/// without `perple-serve` depending on the engine-side crates.
pub trait SpecRunner: Send + Sync {
    /// Parse and execute `spec_text` against the store at `store_root`.
    ///
    /// `on_record` is called exactly once per expanded item slot, in the
    /// engine's observation order (cache hits first in slot order, then
    /// executed items as they complete): `Some(json)` carries the
    /// byte-stable rendered outcome record, `None` marks an item the
    /// executor lost. Returns the run summary as a JSON string.
    fn run(
        &self,
        spec_text: &str,
        store_root: &Path,
        on_record: &mut dyn FnMut(usize, Option<String>),
    ) -> Result<String, String>;

    /// Resume the pending run `id` at `store_root` (journal replay >
    /// cache > execute). Same observation contract as [`SpecRunner::run`].
    fn resume(
        &self,
        store_root: &Path,
        id: &str,
        on_record: &mut dyn FnMut(usize, Option<String>),
    ) -> Result<String, String>;

    /// Ids of interrupted runs at `store_root` that have a pending
    /// marker, i.e. candidates for boot-time auto-resume.
    fn pending(&self, store_root: &Path) -> Result<Vec<String>, String>;
}

/// Errors of the serve layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Socket setup or accept-loop trouble.
    Bind(String),
    /// A connection-level IO failure.
    Io(String),
    /// The peer sent something that is not the HTTP subset we speak.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind(m) => write!(f, "bind failed: {m}"),
            ServeError::Io(m) => write!(f, "connection I/O failed: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
