//! The threaded campaign server.
//!
//! One accept thread (nonblocking, polling the drain flag between
//! accepts), one short-lived handler thread per connection, and a fixed
//! pool of worker threads multiplexing jobs from the [`JobQueue`]
//! through the embedder's [`SpecRunner`] — which in turn shares one
//! content-addressed cache and journaled run store across every job, so
//! a resubmitted spec is pure cache hits.
//!
//! Streaming order: the engine observes cache hits first (slot order)
//! and executed items as they complete; a small reorder buffer holds
//! out-of-order completions and releases the contiguous prefix, so the
//! chunked JSONL a submitter sees is byte-for-byte the `items.json`
//! record sequence of the equivalent batch run.
//!
//! Graceful drain: when SIGTERM flips the [`crate::signal`] flag (or a
//! [`ShutdownHandle`] fires), the accept loop stops, the queue rejects
//! new work with 503, workers finish every queued and running job (the
//! engine journals in-flight chunks via its write-ahead machinery), and
//! the process exits with a store `campaign fsck` finds nothing in.

use crate::http::{write_response, ChunkedWriter, Request};
use crate::queue::{Job, JobQueue, Next, SubmitError};
use crate::{signal, ServeError, SpecRunner};
use perple_analysis::jsonout::{parse, Json};
use perple_obs::metrics::{add, observe, snapshot, Hist, Metric};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many completed jobs stay queryable via `GET /jobs/<id>` before
/// the oldest are evicted (bounds registry memory on long-lived
/// servers).
const RETAIN_DONE: usize = 256;
/// Accept-loop poll interval while idle.
const POLL: Duration = Duration::from_millis(20);
/// Per-connection read timeout (a stuck client must not block drain).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Where to listen.
#[derive(Debug, Clone)]
pub enum Bind {
    /// TCP `HOST:PORT` (port 0 picks a free port).
    Tcp(String),
    /// Unix domain socket path (a stale file is replaced).
    Unix(PathBuf),
}

/// Server configuration (all knobs the CLI exposes).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker pool size (clamped to ≥ 1).
    pub workers: usize,
    /// Campaign store root shared by every job.
    pub store_root: PathBuf,
    /// Bounded queue capacity (jobs waiting, not running).
    pub queue_capacity: usize,
    /// Max jobs one client may have queued-or-running.
    pub per_client_quota: usize,
}

impl ServerConfig {
    /// Defaults mirroring the CLI: queue of 64, quota of 8.
    pub fn new(bind: Bind, workers: usize, store_root: PathBuf) -> ServerConfig {
        ServerConfig {
            bind,
            workers,
            store_root,
            queue_capacity: 64,
            per_client_quota: 8,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_read_timeout(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(READ_TIMEOUT)),
            Conn::Unix(s) => s.set_read_timeout(Some(READ_TIMEOUT)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Job registry: id → live handle, with bounded retention of completed
/// jobs.
struct Registry {
    inner: Mutex<RegistryInner>,
}

struct RegistryInner {
    jobs: HashMap<String, Arc<Job>>,
    done: VecDeque<String>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            inner: Mutex::new(RegistryInner {
                jobs: HashMap::new(),
                done: VecDeque::new(),
            }),
        }
    }

    fn insert(&self, job: &Arc<Job>) {
        let mut g = self.inner.lock().unwrap();
        g.jobs.insert(job.id.clone(), Arc::clone(job));
    }

    fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.inner.lock().unwrap().jobs.get(id).cloned()
    }

    fn note_done(&self, id: &str) {
        let mut g = self.inner.lock().unwrap();
        g.done.push_back(id.to_string());
        while g.done.len() > RETAIN_DONE {
            if let Some(old) = g.done.pop_front() {
                g.jobs.remove(&old);
            }
        }
    }
}

/// Aggregated item counters across all finished jobs (feeds the cache
/// hit-rate in `/metrics`).
struct Totals {
    items: AtomicU64,
    hits: AtomicU64,
    executed: AtomicU64,
}

/// Reorder buffer: the engine reports items as they finish; the stream
/// must emit them in slot (= `items.json`) order. Holds out-of-order
/// completions and releases the contiguous prefix, skipping lost slots.
struct Reorder {
    next: usize,
    held: BTreeMap<usize, Option<String>>,
}

impl Reorder {
    fn new() -> Reorder {
        Reorder {
            next: 0,
            held: BTreeMap::new(),
        }
    }

    fn push(&mut self, slot: usize, record: Option<String>, emit: &mut dyn FnMut(String)) {
        self.held.insert(slot, record);
        while let Some(r) = self.held.remove(&self.next) {
            self.next += 1;
            if let Some(line) = r {
                emit(line);
            }
        }
    }
}

struct Ctx {
    queue: Arc<JobQueue>,
    registry: Registry,
    runner: Arc<dyn SpecRunner>,
    store_root: PathBuf,
    totals: Totals,
    stop: AtomicBool,
}

/// Stops one server without touching the process-wide signal flag
/// (tests run several servers in one process).
#[derive(Clone)]
pub struct ShutdownHandle {
    ctx: Arc<Ctx>,
}

impl ShutdownHandle {
    /// Begin graceful drain, as if SIGTERM had arrived.
    pub fn shutdown(&self) {
        self.ctx.stop.store(true, Ordering::SeqCst);
    }
}

/// A bound (but not yet serving) campaign server.
pub struct Server {
    listener: Listener,
    local: String,
    config: ServerConfig,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the listener and builds the shared state. Nothing is
    /// accepted or executed until [`Server::serve`].
    pub fn bind(config: ServerConfig, runner: Arc<dyn SpecRunner>) -> Result<Server, ServeError> {
        perple_obs::metrics::set_enabled(true);
        let (listener, local) = match &config.bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr)
                    .map_err(|e| ServeError::Bind(format!("{addr}: {e}")))?;
                let local = l
                    .local_addr()
                    .map_err(|e| ServeError::Bind(e.to_string()))?
                    .to_string();
                (Listener::Tcp(l), local)
            }
            Bind::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)
                        .map_err(|e| ServeError::Bind(format!("{}: {e}", path.display())))?;
                }
                let l = UnixListener::bind(path)
                    .map_err(|e| ServeError::Bind(format!("{}: {e}", path.display())))?;
                (Listener::Unix(l), path.display().to_string())
            }
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
        .map_err(|e| ServeError::Bind(e.to_string()))?;
        let ctx = Arc::new(Ctx {
            queue: Arc::new(JobQueue::new(
                config.queue_capacity,
                config.per_client_quota,
            )),
            registry: Registry::new(),
            runner,
            store_root: config.store_root.clone(),
            totals: Totals {
                items: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                executed: AtomicU64::new(0),
            },
            stop: AtomicBool::new(false),
        });
        Ok(Server {
            listener,
            local,
            config,
            ctx,
        })
    }

    /// The bound address: `HOST:PORT` for TCP (real port even when the
    /// config said `:0`), the socket path for Unix.
    pub fn local_addr(&self) -> &str {
        &self.local
    }

    /// A handle that triggers graceful drain of this server only.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Resumes every pending (interrupted) run in the store before the
    /// server starts accepting — journal replay first, then cache, then
    /// execution of whatever is genuinely left. `report(id, summary)`
    /// is called per resumed run.
    pub fn resume_pending(&self, mut report: impl FnMut(&str, &str)) -> Result<usize, ServeError> {
        let ids = self
            .ctx
            .runner
            .pending(&self.ctx.store_root)
            .map_err(ServeError::Io)?;
        let mut resumed = 0usize;
        for id in ids {
            let mut sink = |_slot: usize, _rec: Option<String>| {};
            match self.ctx.runner.resume(&self.ctx.store_root, &id, &mut sink) {
                Ok(summary) => {
                    self.note_summary(&summary);
                    report(&id, &summary);
                    resumed += 1;
                }
                Err(e) => return Err(ServeError::Io(format!("resume {id}: {e}"))),
            }
        }
        Ok(resumed)
    }

    fn note_summary(&self, summary: &str) {
        note_summary(&self.ctx, summary);
    }

    /// Runs the accept loop until drain, then shuts down gracefully:
    /// workers finish every admitted job, streaming connections complete,
    /// and (for Unix binds) the socket file is removed. Returns only
    /// after the store is quiescent.
    pub fn serve(self) -> Result<(), ServeError> {
        let ctx = Arc::clone(&self.ctx);
        let mut workers = Vec::new();
        for w in 0..self.config.workers.max(1) {
            let ctx = Arc::clone(&ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("perple-serve-worker-{w}"))
                    .spawn(move || worker_loop(&ctx))
                    .map_err(|e| ServeError::Bind(e.to_string()))?,
            );
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if ctx.stop.load(Ordering::SeqCst) || signal::shutdown_requested() {
                break;
            }
            let accepted = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(Conn::Tcp(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(ServeError::Io(e.to_string())),
                },
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => Some(Conn::Unix(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(ServeError::Io(e.to_string())),
                },
            };
            match accepted {
                Some(conn) => {
                    let ctx = Arc::clone(&ctx);
                    if let Ok(h) = std::thread::Builder::new()
                        .name("perple-serve-conn".into())
                        .spawn(move || handle_conn(conn, &ctx))
                    {
                        handlers.push(h);
                    }
                    // Reap finished handlers so the vec stays bounded
                    // under sustained load.
                    handlers.retain(|h| !h.is_finished());
                }
                None => std::thread::sleep(POLL),
            }
        }
        // Drain: stop admitting, finish what was admitted.
        ctx.queue.drain();
        for w in workers {
            let _ = w.join();
        }
        ctx.queue.wait_idle();
        for h in handlers {
            let _ = h.join();
        }
        if let Bind::Unix(path) = &self.config.bind {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

fn note_summary(ctx: &Ctx, summary: &str) {
    if let Ok(v) = parse(summary) {
        let items = v.get("items").and_then(Json::as_u64).unwrap_or(0);
        let hits = v.get("hits").and_then(Json::as_u64).unwrap_or(0);
        let executed = v.get("executed").and_then(Json::as_u64).unwrap_or(0);
        ctx.totals.items.fetch_add(items, Ordering::Relaxed);
        ctx.totals.hits.fetch_add(hits, Ordering::Relaxed);
        ctx.totals.executed.fetch_add(executed, Ordering::Relaxed);
    }
}

fn worker_loop(ctx: &Ctx) {
    while let Some(job) = ctx.queue.claim() {
        let t0 = Instant::now();
        let mut last = t0;
        let mut reorder = Reorder::new();
        let result = {
            let job_ref = &job;
            let mut emit = move |line: String| {
                let now = Instant::now();
                observe(
                    Hist::ServeItemMicros,
                    now.duration_since(last).as_micros() as u64,
                );
                last = now;
                add(Metric::ServeItemsStreamed, 1);
                job_ref.push_record(line);
            };
            let mut on_record = |slot: usize, rec: Option<String>| {
                reorder.push(slot, rec, &mut emit);
            };
            ctx.runner.run(&job.spec, &ctx.store_root, &mut on_record)
        };
        match result {
            Ok(summary) => {
                note_summary(ctx, &summary);
                job.complete(summary);
            }
            Err(message) => job.fail(message),
        }
        observe(Hist::ServeJobMicros, t0.elapsed().as_micros() as u64);
        add(Metric::ServeJobsDone, 1);
        // Exactly-once accounting regardless of which path got here.
        ctx.queue.finish(&job);
        ctx.registry.note_done(&job.id);
    }
}

fn submit_reject(conn: &mut Conn, err: SubmitError) {
    let (status, reason) = match err {
        SubmitError::QueueFull | SubmitError::QuotaExceeded => (429, "Too Many Requests"),
        SubmitError::Draining => (503, "Service Unavailable"),
    };
    let body = Json::obj(vec![
        ("error", Json::from(err.name())),
        ("retry_after_ms", Json::from(1000u64)),
    ])
    .render()
        + "\n";
    let _ = write_response(
        conn,
        status,
        reason,
        &[("Retry-After", "1")],
        "application/json",
        body.as_bytes(),
    );
}

fn handle_submit(mut conn: Conn, ctx: &Ctx, req: &Request) {
    add(Metric::ServeSubmissions, 1);
    let client = req.query("client").unwrap_or("anon").to_string();
    let wait = req.query("wait") != Some("0");
    let spec = String::from_utf8_lossy(&req.body).to_string();
    if spec.trim().is_empty() {
        let _ = write_response(
            &mut conn,
            400,
            "Bad Request",
            &[],
            "application/json",
            b"{\"error\":\"empty spec\"}\n",
        );
        return;
    }
    let job = match ctx.queue.submit(&client, spec) {
        Ok(job) => job,
        Err(e) => {
            add(Metric::ServeRejections, 1);
            submit_reject(&mut conn, e);
            return;
        }
    };
    ctx.registry.insert(&job);
    if !wait {
        let body = Json::obj(vec![
            ("job", Json::from(job.id.as_str())),
            ("state", Json::from("queued")),
        ])
        .render()
            + "\n";
        let _ = write_response(
            &mut conn,
            202,
            "Accepted",
            &[],
            "application/json",
            body.as_bytes(),
        );
        return;
    }
    stream_job(conn, &job);
}

/// Streams a job's records (from the start) as chunked JSONL, ending
/// with a `{"job":...,"summary":...}` (or `"error"`) line.
fn stream_job(conn: Conn, job: &Arc<Job>) {
    let mut w = match ChunkedWriter::start(conn, 200, "OK", "application/jsonl") {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut cursor = 0usize;
    loop {
        match job.wait_next(cursor) {
            Next::Record(line) => {
                cursor += 1;
                if w.chunk(format!("{line}\n").as_bytes()).is_err() {
                    return; // client went away; the job keeps running
                }
            }
            Next::Done(summary) => {
                let tail = match parse(&summary) {
                    Ok(v) => Json::obj(vec![("job", Json::from(job.id.as_str())), ("summary", v)])
                        .render(),
                    Err(_) => format!("{{\"job\":\"{}\",\"summary\":null}}", job.id),
                };
                let _ = w.chunk(format!("{tail}\n").as_bytes());
                let _ = w.finish();
                return;
            }
            Next::Failed(message) => {
                let tail = Json::obj(vec![
                    ("job", Json::from(job.id.as_str())),
                    ("error", Json::from(message.as_str())),
                ])
                .render();
                let _ = w.chunk(format!("{tail}\n").as_bytes());
                let _ = w.finish();
                return;
            }
        }
    }
}

fn queue_stats_json(ctx: &Ctx) -> Json {
    let s = ctx.queue.stats();
    Json::obj(vec![
        ("depth", Json::from(s.queued)),
        ("running", Json::from(s.running)),
        ("capacity", Json::from(s.capacity)),
        ("quota", Json::from(s.per_client_quota)),
        ("clients", Json::from(s.clients)),
        ("draining", Json::from(s.draining)),
        ("submitted", Json::from(s.submitted)),
        ("rejected", Json::from(s.rejected)),
        ("finished", Json::from(s.finished)),
    ])
}

fn metrics_json(ctx: &Ctx) -> String {
    let snap = snapshot();
    let items = ctx.totals.items.load(Ordering::Relaxed);
    let hits = ctx.totals.hits.load(Ordering::Relaxed);
    let executed = ctx.totals.executed.load(Ordering::Relaxed);
    let permille = (hits * 1000).checked_div(items).unwrap_or(0);
    let q = |h: &str, p: f64| Json::from(snap.quantile(h, p).unwrap_or(0));
    let obs = parse(&snap.render_json()).unwrap_or(Json::Null);
    Json::obj(vec![
        ("schema", Json::from(1u64)),
        ("queue", queue_stats_json(ctx)),
        (
            "cache",
            Json::obj(vec![
                ("items", Json::from(items)),
                ("hits", Json::from(hits)),
                ("executed", Json::from(executed)),
                ("hit_rate_permille", Json::from(permille)),
            ]),
        ),
        (
            "latency_us",
            Json::obj(vec![
                ("item_p50", q("serve_item_micros", 0.5)),
                ("item_p99", q("serve_item_micros", 0.99)),
                ("job_p50", q("serve_job_micros", 0.5)),
                ("job_p99", q("serve_job_micros", 0.99)),
            ]),
        ),
        ("metrics", obs),
    ])
    .render()
        + "\n"
}

fn handle_conn(mut conn: Conn, ctx: &Ctx) {
    let _ = conn.set_read_timeout();
    let reader_side = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_side);
    let req = match Request::read_from(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            let body = format!("{{\"error\":\"{e}\"}}\n");
            let _ = write_response(
                &mut conn,
                400,
                "Bad Request",
                &[],
                "application/json",
                body.as_bytes(),
            );
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/submit") => handle_submit(conn, ctx, &req),
        ("GET", "/stats") => {
            let body = Json::obj(vec![
                ("schema", Json::from(1u64)),
                ("queue", queue_stats_json(ctx)),
            ])
            .render()
                + "\n";
            let _ = write_response(
                &mut conn,
                200,
                "OK",
                &[],
                "application/json",
                body.as_bytes(),
            );
        }
        ("GET", "/metrics") => {
            let body = metrics_json(ctx);
            let _ = write_response(
                &mut conn,
                200,
                "OK",
                &[],
                "application/json",
                body.as_bytes(),
            );
        }
        ("GET", "/healthz") => {
            let _ = write_response(&mut conn, 200, "OK", &[], "text/plain", b"ok\n");
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            let (id, want_stream) = match rest.strip_suffix("/stream") {
                Some(id) => (id, true),
                None => (rest, false),
            };
            match ctx.registry.get(id) {
                None => {
                    let _ = write_response(
                        &mut conn,
                        404,
                        "Not Found",
                        &[],
                        "application/json",
                        b"{\"error\":\"no such job\"}\n",
                    );
                }
                Some(job) if want_stream => stream_job(conn, &job),
                Some(job) => {
                    let (state, records, summary) = job.snapshot();
                    let summary_json = summary
                        .as_deref()
                        .and_then(|s| parse(s).ok())
                        .unwrap_or(Json::Null);
                    let body = Json::obj(vec![
                        ("job", Json::from(job.id.as_str())),
                        ("client", Json::from(job.client.as_str())),
                        ("state", Json::from(state.name())),
                        ("records", Json::from(records)),
                        ("summary", summary_json),
                    ])
                    .render()
                        + "\n";
                    let _ = write_response(
                        &mut conn,
                        200,
                        "OK",
                        &[],
                        "application/json",
                        body.as_bytes(),
                    );
                }
            }
        }
        _ => {
            let _ = write_response(
                &mut conn,
                404,
                "Not Found",
                &[],
                "application/json",
                b"{\"error\":\"no such endpoint\"}\n",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_buffer_releases_contiguous_prefix_and_skips_lost() {
        let mut r = Reorder::new();
        let out = std::cell::RefCell::new(Vec::new());
        let mut emit = |s: String| out.borrow_mut().push(s);
        r.push(2, Some("c".into()), &mut emit);
        r.push(0, Some("a".into()), &mut emit);
        assert_eq!(*out.borrow(), vec!["a"]);
        r.push(1, None, &mut emit); // lost slot: skipped, not blocking
        assert_eq!(*out.borrow(), vec!["a", "c"]);
        r.push(3, Some("d".into()), &mut emit);
        assert_eq!(*out.borrow(), vec!["a", "c", "d"]);
    }
}
