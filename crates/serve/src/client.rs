//! A minimal client for the serve protocol, shared by the `perple
//! client` subcommand, the integration tests, and CI (no `curl`
//! dependency). Speaks exactly the subset [`crate::http`] emits:
//! one request per connection, fixed-length or chunked responses.

use crate::http::Response;
use crate::ServeError;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where the server lives.
#[derive(Debug, Clone)]
pub enum Target {
    /// TCP `HOST:PORT`.
    Tcp(String),
    /// Unix domain socket path.
    Unix(PathBuf),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Target {
    fn connect(&self) -> Result<Conn, ServeError> {
        match self {
            Target::Tcp(addr) => TcpStream::connect(addr)
                .map(Conn::Tcp)
                .map_err(|e| ServeError::Io(format!("{addr}: {e}"))),
            Target::Unix(path) => UnixStream::connect(path)
                .map(Conn::Unix)
                .map_err(|e| ServeError::Io(format!("{}: {e}", path.display()))),
        }
    }
}

/// A finished request: status, headers of interest, and every body line
/// (also delivered incrementally through the callback, for streams).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` header value, when the server sent one.
    pub retry_after: Option<String>,
    /// All body lines in arrival order.
    pub lines: Vec<String>,
}

/// One request against the server. `on_line` (when given) sees each
/// body line as it arrives — for `POST /submit?wait=1` that means
/// records stream in real time.
pub fn request(
    target: &Target,
    method: &str,
    path: &str,
    body: Option<&str>,
    mut on_line: Option<&mut dyn FnMut(&str)>,
) -> Result<Outcome, ServeError> {
    let mut conn = target.connect()?;
    let payload = body.unwrap_or("");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: perple\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    )
    .map_err(|e| ServeError::Io(e.to_string()))?;
    conn.write_all(payload.as_bytes())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    conn.flush().map_err(|e| ServeError::Io(e.to_string()))?;
    let mut reader = BufReader::new(conn);
    let head = Response::read_head(&mut reader)?;
    let mut lines = Vec::new();
    head.read_body_lines(&mut reader, &mut |line| {
        if let Some(cb) = on_line.as_deref_mut() {
            cb(line);
        }
        lines.push(line.to_string());
    })?;
    Ok(Outcome {
        status: head.status,
        retry_after: head.header("retry-after").map(str::to_string),
        lines,
    })
}

/// Submits a campaign spec. With `wait` the records stream through
/// `on_line`; without it the server replies 202 immediately.
pub fn submit(
    target: &Target,
    spec: &str,
    client: &str,
    wait: bool,
    on_line: Option<&mut dyn FnMut(&str)>,
) -> Result<Outcome, ServeError> {
    let path = format!(
        "/submit?client={client}&wait={}",
        if wait { "1" } else { "0" }
    );
    request(target, "POST", &path, Some(spec), on_line)
}

/// Plain GET (status, stats, metrics, health).
pub fn get(target: &Target, path: &str) -> Result<Outcome, ServeError> {
    request(target, "GET", path, None, None)
}
