//! A deliberately tiny HTTP/1.1 subset, hand-rolled over `std` streams.
//!
//! The server speaks exactly what `perple client` and a plain `curl`
//! need: one request per connection (`Connection: close`), headers up to
//! a fixed cap, optional `Content-Length` bodies, and chunked
//! transfer-encoding for streamed JSONL responses. Nothing here
//! allocates per-byte or depends on anything outside `std`.

use crate::ServeError;
use std::io::{BufRead, Write};

/// Upper bound on a request body (campaign specs are a few hundred
/// bytes; 1 MiB leaves room for generous suites without letting a
/// client balloon server memory).
pub const MAX_BODY: usize = 1 << 20;
/// Upper bound on a single header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers per message.
const MAX_HEADERS: usize = 64;

fn read_line(r: &mut impl BufRead) -> Result<String, ServeError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(ServeError::Protocol("header line too long".into()));
                }
            }
            Err(e) => return Err(ServeError::Io(e.to_string())),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ServeError::Protocol("non-UTF-8 header line".into()))
}

fn read_headers(r: &mut impl BufRead) -> Result<Vec<(String, String)>, ServeError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ServeError::Protocol("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::Protocol(format!("malformed header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == &name.to_ascii_lowercase())
        .map(|(_, v)| v.as_str())
}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Raw query string (empty if absent), plus parsed pairs.
    pub query: Vec<(String, String)>,
    /// Lowercased header name → trimmed value, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` delimited; empty otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads one request from the stream. Enforces [`MAX_BODY`].
    pub fn read_from(r: &mut impl BufRead) -> Result<Request, ServeError> {
        let start = read_line(r)?;
        let mut parts = start.split_ascii_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| ServeError::Protocol("empty request line".into()))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| ServeError::Protocol("request line missing target".into()))?
            .to_string();
        let headers = read_headers(r)?;
        let body_len = match header(&headers, "content-length") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| ServeError::Protocol(format!("bad content-length: {v:?}")))?,
            None => 0,
        };
        if body_len > MAX_BODY {
            return Err(ServeError::Protocol(format!(
                "body of {body_len} bytes exceeds the {MAX_BODY} byte cap"
            )));
        }
        let mut body = vec![0u8; body_len];
        r.read_exact(&mut body)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let (path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q),
            None => (target.clone(), ""),
        };
        let query = raw_query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (kv.to_string(), String::new()),
            })
            .collect();
        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
        })
    }

    /// First value of the (lowercased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// First value of query key `key`.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Writes a complete fixed-length response and leaves the connection to
/// be closed by the caller (`Connection: close` is always sent).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    write!(w, "Connection: close\r\n")?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer response in progress: the head is written by
/// [`ChunkedWriter::start`], each [`ChunkedWriter::chunk`] flushes one
/// chunk (so the submitter sees records as they complete), and
/// [`ChunkedWriter::finish`] terminates the stream.
pub struct ChunkedWriter<W: Write> {
    inner: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head announcing chunked transfer-encoding.
    pub fn start(
        mut inner: W,
        status: u16,
        reason: &str,
        content_type: &str,
    ) -> std::io::Result<Self> {
        write!(inner, "HTTP/1.1 {status} {reason}\r\n")?;
        write!(inner, "Content-Type: {content_type}\r\n")?;
        write!(inner, "Transfer-Encoding: chunked\r\n")?;
        write!(inner, "Connection: close\r\n\r\n")?;
        inner.flush()?;
        Ok(ChunkedWriter { inner })
    }

    /// Emits one chunk and flushes it. Empty payloads are skipped (an
    /// empty chunk would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", data.len())?;
        self.inner.write_all(data)?;
        write!(self.inner, "\r\n")?;
        self.inner.flush()
    }

    /// Writes the zero-length terminator chunk.
    pub fn finish(mut self) -> std::io::Result<()> {
        write!(self.inner, "0\r\n\r\n")?;
        self.inner.flush()
    }
}

/// Client-side parsed response head.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Lowercased header name → trimmed value.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// Reads a status line plus headers (not the body).
    pub fn read_head(r: &mut impl BufRead) -> Result<Response, ServeError> {
        let start = read_line(r)?;
        let mut parts = start.split_ascii_whitespace();
        let version = parts
            .next()
            .ok_or_else(|| ServeError::Protocol("empty status line".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(ServeError::Protocol(format!("not HTTP: {start:?}")));
        }
        let status = parts
            .next()
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ServeError::Protocol(format!("bad status line: {start:?}")))?;
        Ok(Response {
            status,
            headers: read_headers(r)?,
        })
    }

    /// First value of the (lowercased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// Reads the response body according to this head: chunked decode if
    /// `Transfer-Encoding: chunked`, else `Content-Length`, else until
    /// EOF. Calls `on_line` for every complete `\n`-terminated line as
    /// it arrives (and once for a trailing unterminated line).
    pub fn read_body_lines(
        &self,
        r: &mut impl BufRead,
        on_line: &mut dyn FnMut(&str),
    ) -> Result<(), ServeError> {
        let mut pending: Vec<u8> = Vec::new();
        let feed = |data: &[u8], pending: &mut Vec<u8>, on_line: &mut dyn FnMut(&str)| {
            pending.extend_from_slice(data);
            while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = pending.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                on_line(text.trim_end_matches('\r'));
            }
        };
        if self
            .header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
        {
            loop {
                let size_line = read_line(r)?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| ServeError::Protocol(format!("bad chunk size: {size_line:?}")))?;
                if size == 0 {
                    let _ = read_line(r); // trailing CRLF after terminator
                    break;
                }
                let mut chunk = vec![0u8; size];
                r.read_exact(&mut chunk)
                    .map_err(|e| ServeError::Io(e.to_string()))?;
                let mut crlf = [0u8; 2];
                r.read_exact(&mut crlf)
                    .map_err(|e| ServeError::Io(e.to_string()))?;
                feed(&chunk, &mut pending, on_line);
            }
        } else if let Some(len) = self.header("content-length") {
            let len: usize = len
                .parse()
                .map_err(|_| ServeError::Protocol("bad content-length".into()))?;
            let mut body = vec![0u8; len];
            r.read_exact(&mut body)
                .map_err(|e| ServeError::Io(e.to_string()))?;
            feed(&body, &mut pending, on_line);
        } else {
            let mut body = Vec::new();
            r.read_to_end(&mut body)
                .map_err(|e| ServeError::Io(e.to_string()))?;
            feed(&body, &mut pending, on_line);
        }
        if !pending.is_empty() {
            let text = String::from_utf8_lossy(&pending).to_string();
            on_line(text.trim_end_matches('\r'));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_query_and_body() {
        let raw = b"POST /submit?wait=1&client=ci HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\nname=smok";
        let mut r = BufReader::new(&raw[..]);
        let req = Request::read_from(&mut r).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/submit");
        assert_eq!(req.query("wait"), Some("1"));
        assert_eq!(req.query("client"), Some("ci"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"name=smok");
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_lengths() {
        let raw = format!(
            "POST /submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut r = BufReader::new(raw.as_bytes());
        assert!(matches!(
            Request::read_from(&mut r),
            Err(ServeError::Protocol(_))
        ));
        let raw = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(matches!(
            Request::read_from(&mut r),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn chunked_roundtrip_preserves_lines() {
        let mut wire = Vec::new();
        {
            let mut w = ChunkedWriter::start(&mut wire, 200, "OK", "application/jsonl").unwrap();
            w.chunk(b"{\"a\":1}\n").unwrap();
            w.chunk(b"{\"b\":2}\n{\"c\"").unwrap();
            w.chunk(b":3}\n").unwrap();
            w.finish().unwrap();
        }
        let mut r = BufReader::new(&wire[..]);
        let head = Response::read_head(&mut r).unwrap();
        assert_eq!(head.status, 200);
        let mut lines = Vec::new();
        head.read_body_lines(&mut r, &mut |l| lines.push(l.to_string()))
            .unwrap();
        assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
    }

    #[test]
    fn fixed_length_response_roundtrip() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            429,
            "Too Many Requests",
            &[("Retry-After", "1")],
            "application/json",
            b"{\"error\":\"queue full\"}\n",
        )
        .unwrap();
        let mut r = BufReader::new(&wire[..]);
        let head = Response::read_head(&mut r).unwrap();
        assert_eq!(head.status, 429);
        assert_eq!(head.header("retry-after"), Some("1"));
        let mut lines = Vec::new();
        head.read_body_lines(&mut r, &mut |l| lines.push(l.to_string()))
            .unwrap();
        assert_eq!(lines, vec!["{\"error\":\"queue full\"}"]);
    }
}
