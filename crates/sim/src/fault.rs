//! Machine-level fault injection.
//!
//! A [`FaultPlan`] makes the simulated machine *misbehave on purpose* so
//! the experiment layer's detection, quarantine, and degradation paths can
//! be exercised deterministically. Four fault kinds are modeled, each
//! scoped to an iteration window and (optionally) one thread:
//!
//! * **dropped stores** — the store retires but never reaches the buffer
//!   or memory (a lost write);
//! * **corrupted stores** — the buffered value is perturbed off its
//!   `k*n + a` sequence term (wrong residue / out-of-sequence value);
//! * **stuck threads** — a bounded stall window (livelock-like: the
//!   thread stops making progress for `stall` cycles);
//! * **reordering bursts** — store-buffer drains leave per-location FIFO
//!   order only (the PSO-like behaviour of `weak_store_order`, but
//!   confined to the window).
//!
//! Injection draws come from a *dedicated* fault PRNG derived from the run
//! seed, so (a) two runs with equal seed and plan inject identically, and
//! (b) an **empty plan changes nothing**: the machine's main PRNG stream
//! is untouched, so a run with `FaultPlan::none()` is bit-identical to a
//! run without fault support at all.

use std::fmt;

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The store retires without ever being buffered or drained.
    DropStore,
    /// The stored value is perturbed off its arithmetic sequence.
    CorruptStore,
    /// The thread stalls for `stall` cycles (bounded livelock window).
    StuckThread {
        /// Stall length in cycles (bounded, so runs still terminate).
        stall: u64,
    },
    /// Store-buffer drains pick a random per-location head (PSO burst).
    ReorderBurst,
}

impl FaultKind {
    /// Short kind name, matching the [`FaultPlan::parse`] grammar.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DropStore => "drop",
            FaultKind::CorruptStore => "corrupt",
            FaultKind::StuckThread { .. } => "stuck",
            FaultKind::ReorderBurst => "reorder",
        }
    }
}

/// One fault clause: a kind, a thread scope, an iteration window, and a
/// per-event probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// Affected thread index; `None` applies to every thread.
    pub thread: Option<usize>,
    /// First affected iteration (inclusive).
    pub from_iter: u64,
    /// End of the affected window (exclusive).
    pub to_iter: u64,
    /// Probability that an applicable event actually faults, in `[0, 1]`.
    pub prob: f64,
}

impl FaultSpec {
    /// True if the spec covers `(thread, iter)`.
    fn covers(&self, thread: usize, iter: u64) -> bool {
        self.thread.is_none_or(|t| t == thread) && iter >= self.from_iter && iter < self.to_iter
    }
}

/// A deterministic fault-injection schedule (a list of [`FaultSpec`]s).
///
/// The default plan is empty: no faults, no behavioural change.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The plan's clauses, in match priority order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Returns the plan with `spec` appended (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// First clause matching a **store** event (drop or corrupt) at
    /// `(thread, iter)`.
    pub fn store_fault(&self, thread: usize, iter: u64) -> Option<&FaultSpec> {
        self.specs.iter().find(|s| {
            matches!(s.kind, FaultKind::DropStore | FaultKind::CorruptStore)
                && s.covers(thread, iter)
        })
    }

    /// First stuck-thread clause covering `(thread, iter)`.
    pub fn stuck_fault(&self, thread: usize, iter: u64) -> Option<&FaultSpec> {
        self.specs
            .iter()
            .find(|s| matches!(s.kind, FaultKind::StuckThread { .. }) && s.covers(thread, iter))
    }

    /// First reorder-burst clause covering `(thread, iter)`.
    pub fn reorder_fault(&self, thread: usize, iter: u64) -> Option<&FaultSpec> {
        self.specs
            .iter()
            .find(|s| matches!(s.kind, FaultKind::ReorderBurst) && s.covers(thread, iter))
    }

    /// Parses a plan from its CLI syntax: comma-separated clauses of the
    /// form
    ///
    /// ```text
    /// <kind>@<thread>:<from>..<to>[:p<prob>][:c<cycles>]
    /// ```
    ///
    /// where `<kind>` is `drop`, `corrupt`, `stuck`, or `reorder`;
    /// `<thread>` is `t<N>` or `*` (all threads); `<from>..<to>` is the
    /// half-open iteration window; `p<prob>` is the per-event probability
    /// (default 1); and `c<cycles>` is the stall length for `stuck`
    /// (default 10000).
    ///
    /// ```
    /// use perple_sim::FaultPlan;
    /// let plan = FaultPlan::parse("drop@t0:100..200:p0.5,stuck@*:0..10:c5000").unwrap();
    /// assert_eq!(plan.specs().len(), 2);
    /// ```
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            plan.specs.push(parse_clause(clause)?);
        }
        if plan.is_empty() {
            return Err(format!("fault plan {s:?} contains no clauses"));
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            let thread = match spec.thread {
                Some(t) => format!("t{t}"),
                None => "*".to_owned(),
            };
            write!(
                f,
                "{}@{}:{}..{}",
                spec.kind.name(),
                thread,
                spec.from_iter,
                spec.to_iter
            )?;
            if spec.prob < 1.0 {
                write!(f, ":p{}", spec.prob)?;
            }
            if let FaultKind::StuckThread { stall } = spec.kind {
                write!(f, ":c{stall}")?;
            }
        }
        Ok(())
    }
}

fn parse_clause(clause: &str) -> Result<FaultSpec, String> {
    let (kind_str, rest) = clause
        .split_once('@')
        .ok_or_else(|| format!("fault clause {clause:?} is missing '@'"))?;
    let mut parts = rest.split(':');
    let thread_str = parts
        .next()
        .ok_or_else(|| format!("fault clause {clause:?} is missing a thread scope"))?;
    let thread = match thread_str {
        "*" => None,
        t => Some(
            t.strip_prefix('t')
                .and_then(|n| n.parse::<usize>().ok())
                .ok_or_else(|| format!("bad thread scope {t:?} (use t<N> or *)"))?,
        ),
    };
    let window = parts
        .next()
        .ok_or_else(|| format!("fault clause {clause:?} is missing an iteration window"))?;
    let (from_str, to_str) = window
        .split_once("..")
        .ok_or_else(|| format!("bad iteration window {window:?} (use <from>..<to>)"))?;
    let from_iter: u64 = from_str
        .parse()
        .map_err(|_| format!("bad window start {from_str:?}"))?;
    let to_iter: u64 = to_str
        .parse()
        .map_err(|_| format!("bad window end {to_str:?}"))?;
    if to_iter <= from_iter {
        return Err(format!("empty iteration window {window:?}"));
    }

    let mut prob = 1.0f64;
    let mut stall = 10_000u64;
    for opt in parts {
        if let Some(p) = opt.strip_prefix('p') {
            prob = p.parse().map_err(|_| format!("bad probability {opt:?}"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("probability {prob} outside [0, 1]"));
            }
        } else if let Some(c) = opt.strip_prefix('c') {
            stall = c.parse().map_err(|_| format!("bad stall cycles {opt:?}"))?;
            if stall == 0 {
                return Err("stall cycles must be at least 1".to_owned());
            }
        } else {
            return Err(format!("unknown fault option {opt:?}"));
        }
    }

    let kind = match kind_str {
        "drop" => FaultKind::DropStore,
        "corrupt" => FaultKind::CorruptStore,
        "stuck" => FaultKind::StuckThread { stall },
        "reorder" => FaultKind::ReorderBurst,
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(FaultSpec {
        kind,
        thread,
        from_iter,
        to_iter,
        prob,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_matches_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.store_fault(0, 0).is_none());
        assert!(p.stuck_fault(0, 0).is_none());
        assert!(p.reorder_fault(0, 0).is_none());
    }

    #[test]
    fn parse_round_trips_through_display() {
        let src = "drop@t0:100..200:p0.5,corrupt@*:0..50,stuck@t1:10..20:c5000,reorder@*:0..9";
        let plan = FaultPlan::parse(src).unwrap();
        assert_eq!(plan.specs().len(), 4);
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn windows_and_thread_scopes_apply() {
        let plan = FaultPlan::parse("drop@t1:5..10").unwrap();
        assert!(plan.store_fault(1, 5).is_some());
        assert!(plan.store_fault(1, 9).is_some());
        assert!(plan.store_fault(1, 10).is_none(), "window is half-open");
        assert!(plan.store_fault(1, 4).is_none());
        assert!(plan.store_fault(0, 7).is_none(), "t1 scope excludes t0");
        let all = FaultPlan::parse("corrupt@*:0..3").unwrap();
        assert!(all.store_fault(0, 0).is_some());
        assert!(all.store_fault(7, 2).is_some());
    }

    #[test]
    fn kind_queries_are_disjoint() {
        let plan = FaultPlan::parse("stuck@*:0..5:c100,reorder@*:0..5").unwrap();
        assert!(plan.store_fault(0, 0).is_none());
        assert!(matches!(
            plan.stuck_fault(0, 0).unwrap().kind,
            FaultKind::StuckThread { stall: 100 }
        ));
        assert_eq!(
            plan.reorder_fault(0, 0).unwrap().kind,
            FaultKind::ReorderBurst
        );
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "",
            "drop",
            "drop@t0",
            "drop@t0:5",
            "drop@t0:9..5",
            "drop@x0:0..5",
            "warp@t0:0..5",
            "drop@t0:0..5:p2",
            "drop@t0:0..5:q1",
            "stuck@t0:0..5:c0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn builder_appends_in_priority_order() {
        let plan = FaultPlan::none()
            .with(FaultSpec {
                kind: FaultKind::DropStore,
                thread: None,
                from_iter: 0,
                to_iter: 10,
                prob: 1.0,
            })
            .with(FaultSpec {
                kind: FaultKind::CorruptStore,
                thread: None,
                from_iter: 0,
                to_iter: 10,
                prob: 1.0,
            });
        // First matching clause wins: drop shadows corrupt in 0..10.
        assert_eq!(plan.store_fault(0, 3).unwrap().kind, FaultKind::DropStore);
    }
}
