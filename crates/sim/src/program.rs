//! Simulator programs: per-thread loop bodies.

/// A memory address that may stride with the executing thread's iteration
/// index.
///
/// * Perpetual litmus tests use fixed cells (`stride == 0`): every iteration
///   hits the same location.
/// * The litmus7 baseline uses one cell per iteration (`stride == L`, the
///   location count): iteration `n` of a thread accesses cell
///   `base + n * stride`, litmus7's array-of-cells layout that keeps
///   unsynchronized iterations from trampling each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addr {
    /// Base cell index.
    pub base: u32,
    /// Per-iteration stride in cells.
    pub stride: u32,
}

impl Addr {
    /// A fixed (non-striding) address.
    pub fn fixed(base: u32) -> Self {
        Self { base, stride: 0 }
    }

    /// A per-iteration striding address.
    pub fn strided(base: u32, stride: u32) -> Self {
        Self { base, stride }
    }

    /// Resolves the cell index for iteration `n`.
    #[inline]
    pub fn resolve(self, n: u64) -> usize {
        self.base as usize + self.stride as usize * n as usize
    }
}

/// A stored value, possibly drawn from an arithmetic sequence over the
/// executing thread's iteration index (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValExpr {
    /// A constant (classic litmus stores).
    Const(u64),
    /// `k * n + a` where `n` is the thread's current iteration index
    /// (perpetual litmus stores).
    Seq {
        /// Number of distinct values stored to the location (`k_mem`).
        k: u64,
        /// Offset of this store's value within the sequence.
        a: u64,
    },
}

impl ValExpr {
    /// Evaluates the expression at iteration `n`.
    #[inline]
    pub fn eval(self, n: u64) -> u64 {
        match self {
            ValExpr::Const(v) => v,
            ValExpr::Seq { k, a } => k * n + a,
        }
    }
}

/// One operation of a simulated thread's loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOp {
    /// Store `expr` to `addr` (enters the store buffer).
    Store {
        /// Destination address.
        addr: Addr,
        /// Stored value expression.
        expr: ValExpr,
    },
    /// Load `addr` into register `reg` (forwards from the own buffer).
    Load {
        /// Destination register index.
        reg: u8,
        /// Source address.
        addr: Addr,
    },
    /// `MFENCE`: stall until the own store buffer is empty.
    Mfence,
    /// Locked exchange: stall until the buffer is empty, then atomically
    /// load the old value into `reg` and store `expr`.
    Xchg {
        /// Register receiving the old value.
        reg: u8,
        /// Exchanged address.
        addr: Addr,
        /// Stored value expression.
        expr: ValExpr,
    },
    /// Append the current value of `reg` to the thread's result buffer
    /// (`buf_t` of the paper). Free: takes no simulated time.
    Record {
        /// Recorded register index.
        reg: u8,
    },
}

/// A simulated thread: a loop body executed for a number of iterations,
/// optionally starting after a delay (used to model baseline
/// synchronization-jitter).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSpec {
    /// The loop body.
    pub body: Vec<SimOp>,
    /// Number of iterations to execute.
    pub iterations: u64,
    /// Cycle at which the thread starts executing.
    pub start_delay: u64,
}

impl ThreadSpec {
    /// A thread starting at cycle 0.
    pub fn new(body: Vec<SimOp>, iterations: u64) -> Self {
        Self {
            body,
            iterations,
            start_delay: 0,
        }
    }

    /// Returns the spec with a start delay.
    pub fn with_start_delay(mut self, delay: u64) -> Self {
        self.start_delay = delay;
        self
    }

    /// Number of registers the body records per iteration.
    pub fn records_per_iteration(&self) -> usize {
        self.body
            .iter()
            .filter(|op| matches!(op, SimOp::Record { .. }))
            .count()
    }

    /// Highest register index used, plus one.
    pub fn register_count(&self) -> usize {
        self.body
            .iter()
            .filter_map(|op| match op {
                SimOp::Load { reg, .. } | SimOp::Xchg { reg, .. } | SimOp::Record { reg } => {
                    Some(*reg as usize + 1)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_resolution() {
        assert_eq!(Addr::fixed(3).resolve(100), 3);
        assert_eq!(Addr::strided(1, 2).resolve(10), 21);
    }

    #[test]
    fn val_expr_eval() {
        assert_eq!(ValExpr::Const(7).eval(99), 7);
        assert_eq!(ValExpr::Seq { k: 2, a: 1 }.eval(0), 1);
        assert_eq!(ValExpr::Seq { k: 2, a: 1 }.eval(10), 21);
    }

    #[test]
    fn spec_accounting() {
        let spec = ThreadSpec::new(
            vec![
                SimOp::Store {
                    addr: Addr::fixed(0),
                    expr: ValExpr::Const(1),
                },
                SimOp::Load {
                    reg: 2,
                    addr: Addr::fixed(1),
                },
                SimOp::Record { reg: 2 },
            ],
            5,
        )
        .with_start_delay(10);
        assert_eq!(spec.records_per_iteration(), 1);
        assert_eq!(spec.register_count(), 3);
        assert_eq!(spec.start_delay, 10);
    }

    #[test]
    fn empty_body_has_no_registers() {
        let spec = ThreadSpec::new(vec![SimOp::Mfence], 1);
        assert_eq!(spec.register_count(), 0);
        assert_eq!(spec.records_per_iteration(), 0);
    }
}
