//! Simulator configuration.

use crate::fault::FaultPlan;

/// A rejected simulator or experiment configuration: which field was
/// invalid and why. The perple facade routes this through
/// `PerpleError::Config`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"drain_prob"`.
    pub field: &'static str,
    /// Human-readable constraint violation.
    pub message: String,
}

impl ConfigError {
    fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self {
            field,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Tunable parameters of the simulated x86-TSO machine.
///
/// Defaults are calibrated so that (a) weak outcomes of unfenced tests occur
/// at observable rates, (b) thread skew grows to thousands of iterations
/// over long runs (paper Figure 12), and (c) fenced tests never exhibit
/// forbidden outcomes (guaranteed by construction, not calibration).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// PRNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Per-cycle probability that a non-empty store buffer drains its oldest
    /// entry to memory.
    pub drain_prob: f64,
    /// Store-buffer capacity; a store stalls while the buffer is full.
    pub buffer_capacity: usize,
    /// Per-cycle probability that a running thread is preempted by the OS.
    pub preempt_prob: f64,
    /// Mean preemption duration in cycles (uniform in `[1, 2*mean]`).
    pub mean_preempt: u64,
    /// Per-cycle probability of a short interruption (timer tick, minor
    /// fault): long enough to flip which thread reads "fresh" values,
    /// short enough not to desynchronize the run.
    pub micro_preempt_prob: f64,
    /// Mean micro-interruption duration in cycles.
    pub mean_micro_preempt: u64,
    /// Per-cycle probability of a short pipeline/cache stall.
    pub stall_prob: f64,
    /// **Fault injection**: when true, store buffers drain out of order
    /// across locations (per-location FIFO only) — a PSO-like machine that
    /// deliberately violates x86-TSO, used to demonstrate conformance-bug
    /// hunting.
    pub weak_store_order: bool,
    /// Mean short-stall duration in cycles.
    pub mean_stall: u64,
    /// **Fault injection**: scheduled machine-level faults (dropped or
    /// corrupted stores, stuck threads, reordering bursts), deterministic
    /// under [`SimConfig::seed`]. The default plan is empty and leaves the
    /// machine bit-identical to a fault-free build.
    pub fault_plan: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FF_EE00,
            drain_prob: 0.35,
            buffer_capacity: 8,
            preempt_prob: 2e-4,
            mean_preempt: 400,
            micro_preempt_prob: 4e-3,
            mean_micro_preempt: 30,
            stall_prob: 0.12,
            mean_stall: 5,
            weak_store_order: false,
            fault_plan: FaultPlan::none(),
        }
    }
}

impl SimConfig {
    /// A validating builder seeded with the calibrated defaults. Unlike
    /// the panicking `with_*` combinators, [`SimConfigBuilder::build`]
    /// reports constraint violations as a [`ConfigError`] — the form CLI
    /// flags and campaign specs need.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::default(),
        }
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different drain probability.
    ///
    /// # Panics
    /// Panics if `p` is not within `(0, 1]` — a zero drain probability would
    /// deadlock fences.
    pub fn with_drain_prob(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "drain_prob must be in (0, 1]");
        self.drain_prob = p;
        self
    }

    /// Returns the config with different preemption behaviour; controls how
    /// wide the thread-skew distribution grows.
    pub fn with_preemption(mut self, prob: f64, mean_cycles: u64) -> Self {
        self.preempt_prob = prob;
        self.mean_preempt = mean_cycles;
        self
    }

    /// Returns the config with different short-stall behaviour.
    pub fn with_stalls(mut self, prob: f64, mean_cycles: u64) -> Self {
        self.stall_prob = prob;
        self.mean_stall = mean_cycles;
        self
    }

    /// Returns the config with out-of-order store-buffer drains enabled
    /// (the deliberately TSO-violating machine).
    pub fn with_weak_store_order(mut self, weak: bool) -> Self {
        self.weak_store_order = weak;
        self
    }

    /// Returns the config with the given fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// A stable, human-readable descriptor of every behaviour-relevant
    /// field, used as a **cache-key input** by the campaign layer: two
    /// configs produce identical runs iff their descriptors (plus the
    /// program) are identical. Floats print in Rust's shortest round-trip
    /// form and the fault plan in its canonical grammar, so the string is
    /// a pure function of the config — byte-identical across processes.
    pub fn cache_descriptor(&self) -> String {
        format!(
            "seed={:#x};drain={};cap={};preempt={}/{};micro={}/{};stall={}/{};weak={};faults={}",
            self.seed,
            self.drain_prob,
            self.buffer_capacity,
            self.preempt_prob,
            self.mean_preempt,
            self.micro_preempt_prob,
            self.mean_micro_preempt,
            self.stall_prob,
            self.mean_stall,
            self.weak_store_order,
            if self.fault_plan.is_empty() {
                "none".to_owned()
            } else {
                self.fault_plan.to_string()
            },
        )
    }
}

/// Builder for [`SimConfig`] with deferred validation (see
/// [`SimConfig::builder`]). Setters never panic; [`SimConfigBuilder::build`]
/// checks every constraint at once.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the per-cycle store-buffer drain probability.
    pub fn drain_prob(mut self, p: f64) -> Self {
        self.cfg.drain_prob = p;
        self
    }

    /// Sets the store-buffer capacity.
    pub fn buffer_capacity(mut self, cap: usize) -> Self {
        self.cfg.buffer_capacity = cap;
        self
    }

    /// Sets long-preemption probability and mean duration.
    pub fn preemption(mut self, prob: f64, mean_cycles: u64) -> Self {
        self.cfg.preempt_prob = prob;
        self.cfg.mean_preempt = mean_cycles;
        self
    }

    /// Sets micro-preemption probability and mean duration.
    pub fn micro_preemption(mut self, prob: f64, mean_cycles: u64) -> Self {
        self.cfg.micro_preempt_prob = prob;
        self.cfg.mean_micro_preempt = mean_cycles;
        self
    }

    /// Sets short-stall probability and mean duration.
    pub fn stalls(mut self, prob: f64, mean_cycles: u64) -> Self {
        self.cfg.stall_prob = prob;
        self.cfg.mean_stall = mean_cycles;
        self
    }

    /// Enables the deliberately TSO-violating PSO-like drain order.
    pub fn weak_store_order(mut self, weak: bool) -> Self {
        self.cfg.weak_store_order = weak;
        self
    }

    /// Installs a fault-injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first violated constraint:
    /// `drain_prob` must lie in `(0, 1]` (zero would deadlock fences),
    /// every other probability in `[0, 1]`, `buffer_capacity` must be at
    /// least 1, and any scheduler noise with non-zero probability needs a
    /// non-zero mean duration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        let c = &self.cfg;
        if !(c.drain_prob > 0.0 && c.drain_prob <= 1.0) {
            return Err(ConfigError::new(
                "drain_prob",
                format!("{} is outside (0, 1]", c.drain_prob),
            ));
        }
        for (field, p) in [
            ("preempt_prob", c.preempt_prob),
            ("micro_preempt_prob", c.micro_preempt_prob),
            ("stall_prob", c.stall_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ConfigError::new(field, format!("{p} is outside [0, 1]")));
            }
        }
        if c.buffer_capacity == 0 {
            return Err(ConfigError::new(
                "buffer_capacity",
                "must be at least 1 (a store could never retire)",
            ));
        }
        for (field, prob, mean) in [
            ("mean_preempt", c.preempt_prob, c.mean_preempt),
            (
                "mean_micro_preempt",
                c.micro_preempt_prob,
                c.mean_micro_preempt,
            ),
            ("mean_stall", c.stall_prob, c.mean_stall),
        ] {
            if prob > 0.0 && mean == 0 {
                return Err(ConfigError::new(
                    field,
                    "must be non-zero when its probability is non-zero",
                ));
            }
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = SimConfig::default();
        assert!(c.drain_prob > 0.0 && c.drain_prob <= 1.0);
        assert!(c.buffer_capacity > 0);
        assert!(c.preempt_prob < 0.01);
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::default()
            .with_seed(1)
            .with_drain_prob(0.5)
            .with_preemption(0.001, 100)
            .with_stalls(0.1, 2);
        assert_eq!(c.seed, 1);
        assert_eq!(c.drain_prob, 0.5);
        assert_eq!(c.preempt_prob, 0.001);
        assert_eq!(c.mean_preempt, 100);
        assert_eq!(c.stall_prob, 0.1);
        assert_eq!(c.mean_stall, 2);
    }

    #[test]
    #[should_panic(expected = "drain_prob")]
    fn zero_drain_prob_rejected() {
        let _ = SimConfig::default().with_drain_prob(0.0);
    }

    #[test]
    fn builder_defaults_equal_the_default_config() {
        assert_eq!(SimConfig::builder().build().unwrap(), SimConfig::default());
    }

    #[test]
    fn builder_applies_every_field() {
        let plan = FaultPlan::parse("drop@t0:0..5:p0.5").unwrap();
        let c = SimConfig::builder()
            .seed(9)
            .drain_prob(0.5)
            .buffer_capacity(4)
            .preemption(0.001, 100)
            .micro_preemption(0.01, 20)
            .stalls(0.1, 2)
            .weak_store_order(true)
            .fault_plan(plan.clone())
            .build()
            .unwrap();
        let by_hand = SimConfig {
            seed: 9,
            drain_prob: 0.5,
            buffer_capacity: 4,
            preempt_prob: 0.001,
            mean_preempt: 100,
            micro_preempt_prob: 0.01,
            mean_micro_preempt: 20,
            stall_prob: 0.1,
            mean_stall: 2,
            weak_store_order: true,
            fault_plan: plan,
        };
        assert_eq!(c, by_hand);
    }

    #[test]
    fn builder_rejects_invalid_fields_with_named_errors() {
        let err = SimConfig::builder().drain_prob(0.0).build().unwrap_err();
        assert_eq!(err.field, "drain_prob");
        let err = SimConfig::builder().drain_prob(1.5).build().unwrap_err();
        assert_eq!(err.field, "drain_prob");
        let err = SimConfig::builder().buffer_capacity(0).build().unwrap_err();
        assert_eq!(err.field, "buffer_capacity");
        let err = SimConfig::builder()
            .preemption(2.0, 100)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "preempt_prob");
        let err = SimConfig::builder().stalls(0.1, 0).build().unwrap_err();
        assert_eq!(err.field, "mean_stall");
        assert!(err.to_string().contains("mean_stall"));
        // Zero mean is fine while the probability is zero (the "quiet"
        // scheduler configuration).
        assert!(SimConfig::builder().preemption(0.0, 0).build().is_ok());
    }

    #[test]
    fn builder_migration_preserves_cache_descriptors() {
        // Fingerprint stability: a builder-produced config must emit the
        // exact descriptor bytes the combinator path emits, and the
        // default descriptor itself is pinned — campaign cache keys
        // derive from it, so any drift invalidates stores.
        let via_builder = SimConfig::builder().seed(7).build().unwrap();
        let via_combinators = SimConfig::default().with_seed(7);
        assert_eq!(
            via_builder.cache_descriptor(),
            via_combinators.cache_descriptor()
        );
        assert_eq!(
            SimConfig::default().cache_descriptor(),
            "seed=0xc0ffee00;drain=0.35;cap=8;preempt=0.0002/400;micro=0.004/30;\
             stall=0.12/5;weak=false;faults=none"
                .replace(['\n', ' '], "")
        );
    }

    #[test]
    fn cache_descriptor_is_stable_and_sensitive() {
        let a = SimConfig::default().with_seed(7);
        assert_eq!(a.cache_descriptor(), a.clone().cache_descriptor());
        assert_ne!(
            a.cache_descriptor(),
            a.clone().with_seed(8).cache_descriptor()
        );
        assert_ne!(
            a.cache_descriptor(),
            a.clone().with_weak_store_order(true).cache_descriptor()
        );
        let plan = FaultPlan::parse("drop@t0:0..5:p0.5").unwrap();
        let b = a.clone().with_fault_plan(plan);
        assert_ne!(a.cache_descriptor(), b.cache_descriptor());
        assert!(b.cache_descriptor().contains("drop@t0:0..5:p0.5"));
        assert!(a.cache_descriptor().contains("faults=none"));
    }
}
