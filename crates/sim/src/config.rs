//! Simulator configuration.

use crate::fault::FaultPlan;

/// Tunable parameters of the simulated x86-TSO machine.
///
/// Defaults are calibrated so that (a) weak outcomes of unfenced tests occur
/// at observable rates, (b) thread skew grows to thousands of iterations
/// over long runs (paper Figure 12), and (c) fenced tests never exhibit
/// forbidden outcomes (guaranteed by construction, not calibration).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// PRNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Per-cycle probability that a non-empty store buffer drains its oldest
    /// entry to memory.
    pub drain_prob: f64,
    /// Store-buffer capacity; a store stalls while the buffer is full.
    pub buffer_capacity: usize,
    /// Per-cycle probability that a running thread is preempted by the OS.
    pub preempt_prob: f64,
    /// Mean preemption duration in cycles (uniform in `[1, 2*mean]`).
    pub mean_preempt: u64,
    /// Per-cycle probability of a short interruption (timer tick, minor
    /// fault): long enough to flip which thread reads "fresh" values,
    /// short enough not to desynchronize the run.
    pub micro_preempt_prob: f64,
    /// Mean micro-interruption duration in cycles.
    pub mean_micro_preempt: u64,
    /// Per-cycle probability of a short pipeline/cache stall.
    pub stall_prob: f64,
    /// **Fault injection**: when true, store buffers drain out of order
    /// across locations (per-location FIFO only) — a PSO-like machine that
    /// deliberately violates x86-TSO, used to demonstrate conformance-bug
    /// hunting.
    pub weak_store_order: bool,
    /// Mean short-stall duration in cycles.
    pub mean_stall: u64,
    /// **Fault injection**: scheduled machine-level faults (dropped or
    /// corrupted stores, stuck threads, reordering bursts), deterministic
    /// under [`SimConfig::seed`]. The default plan is empty and leaves the
    /// machine bit-identical to a fault-free build.
    pub fault_plan: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FF_EE00,
            drain_prob: 0.35,
            buffer_capacity: 8,
            preempt_prob: 2e-4,
            mean_preempt: 400,
            micro_preempt_prob: 4e-3,
            mean_micro_preempt: 30,
            stall_prob: 0.12,
            mean_stall: 5,
            weak_store_order: false,
            fault_plan: FaultPlan::none(),
        }
    }
}

impl SimConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different drain probability.
    ///
    /// # Panics
    /// Panics if `p` is not within `(0, 1]` — a zero drain probability would
    /// deadlock fences.
    pub fn with_drain_prob(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "drain_prob must be in (0, 1]");
        self.drain_prob = p;
        self
    }

    /// Returns the config with different preemption behaviour; controls how
    /// wide the thread-skew distribution grows.
    pub fn with_preemption(mut self, prob: f64, mean_cycles: u64) -> Self {
        self.preempt_prob = prob;
        self.mean_preempt = mean_cycles;
        self
    }

    /// Returns the config with different short-stall behaviour.
    pub fn with_stalls(mut self, prob: f64, mean_cycles: u64) -> Self {
        self.stall_prob = prob;
        self.mean_stall = mean_cycles;
        self
    }

    /// Returns the config with out-of-order store-buffer drains enabled
    /// (the deliberately TSO-violating machine).
    pub fn with_weak_store_order(mut self, weak: bool) -> Self {
        self.weak_store_order = weak;
        self
    }

    /// Returns the config with the given fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// A stable, human-readable descriptor of every behaviour-relevant
    /// field, used as a **cache-key input** by the campaign layer: two
    /// configs produce identical runs iff their descriptors (plus the
    /// program) are identical. Floats print in Rust's shortest round-trip
    /// form and the fault plan in its canonical grammar, so the string is
    /// a pure function of the config — byte-identical across processes.
    pub fn cache_descriptor(&self) -> String {
        format!(
            "seed={:#x};drain={};cap={};preempt={}/{};micro={}/{};stall={}/{};weak={};faults={}",
            self.seed,
            self.drain_prob,
            self.buffer_capacity,
            self.preempt_prob,
            self.mean_preempt,
            self.micro_preempt_prob,
            self.mean_micro_preempt,
            self.stall_prob,
            self.mean_stall,
            self.weak_store_order,
            if self.fault_plan.is_empty() {
                "none".to_owned()
            } else {
                self.fault_plan.to_string()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = SimConfig::default();
        assert!(c.drain_prob > 0.0 && c.drain_prob <= 1.0);
        assert!(c.buffer_capacity > 0);
        assert!(c.preempt_prob < 0.01);
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::default()
            .with_seed(1)
            .with_drain_prob(0.5)
            .with_preemption(0.001, 100)
            .with_stalls(0.1, 2);
        assert_eq!(c.seed, 1);
        assert_eq!(c.drain_prob, 0.5);
        assert_eq!(c.preempt_prob, 0.001);
        assert_eq!(c.mean_preempt, 100);
        assert_eq!(c.stall_prob, 0.1);
        assert_eq!(c.mean_stall, 2);
    }

    #[test]
    #[should_panic(expected = "drain_prob")]
    fn zero_drain_prob_rejected() {
        let _ = SimConfig::default().with_drain_prob(0.0);
    }

    #[test]
    fn cache_descriptor_is_stable_and_sensitive() {
        let a = SimConfig::default().with_seed(7);
        assert_eq!(a.cache_descriptor(), a.clone().cache_descriptor());
        assert_ne!(
            a.cache_descriptor(),
            a.clone().with_seed(8).cache_descriptor()
        );
        assert_ne!(
            a.cache_descriptor(),
            a.clone().with_weak_store_order(true).cache_descriptor()
        );
        let plan = FaultPlan::parse("drop@t0:0..5:p0.5").unwrap();
        let b = a.clone().with_fault_plan(plan);
        assert_ne!(a.cache_descriptor(), b.cache_descriptor());
        assert!(b.cache_descriptor().contains("drop@t0:0..5:p0.5"));
        assert!(a.cache_descriptor().contains("faults=none"));
    }
}
