//! # perple-sim
//!
//! An operational **x86-TSO simulator** used as the execution substrate for
//! perpetual litmus tests and the litmus7-style baseline.
//!
//! The PerpLE paper evaluates on a 32-core Intel Xeon cluster. This
//! reproduction runs where only a single hardware core may be available, so
//! real-hardware weak-memory outcomes cannot be relied upon; instead this
//! crate simulates the same machine the paper assumes — the operational
//! x86-TSO model (Owens/Sarkar/Sewell) — with the system-level effects that
//! drive the paper's phenomena:
//!
//! * per-thread FIFO **store buffers** with forwarding, probabilistic drain
//!   latency, `MFENCE`/locked-instruction stalls → weak (target) outcomes;
//! * a synchronous-parallel scheduler with per-thread **preemption** and
//!   short stalls → thread skew (paper §VI-B5, Figure 12);
//! * **cycle accounting** → runtime comparisons between synchronization
//!   modes (Figure 10).
//!
//! Programs are small per-thread loop bodies ([`SimOp`]) whose stored values
//! may depend on the executing thread's iteration index ([`ValExpr::Seq`]) —
//! exactly the arithmetic sequences of perpetual litmus tests — and whose
//! addresses may stride per iteration ([`Addr`]), which models litmus7's
//! per-iteration memory cells.
//!
//! # Example
//!
//! ```
//! use perple_sim::{Machine, SimConfig, SimOp, ThreadSpec, Addr, ValExpr};
//!
//! // Perpetual sb, 1000 iterations, locations x=0 and y=1.
//! let body0 = vec![
//!     SimOp::Store { addr: Addr::fixed(0), expr: ValExpr::Seq { k: 1, a: 1 } },
//!     SimOp::Load { reg: 0, addr: Addr::fixed(1) },
//!     SimOp::Record { reg: 0 },
//! ];
//! let body1 = vec![
//!     SimOp::Store { addr: Addr::fixed(1), expr: ValExpr::Seq { k: 1, a: 1 } },
//!     SimOp::Load { reg: 0, addr: Addr::fixed(0) },
//!     SimOp::Record { reg: 0 },
//! ];
//! let threads = vec![
//!     ThreadSpec::new(body0, 1000),
//!     ThreadSpec::new(body1, 1000),
//! ];
//! let mut machine = Machine::new(SimConfig::default().with_seed(42));
//! let out = machine.run(&threads, 2);
//! assert_eq!(out.bufs[0].len(), 1000);
//! assert!(out.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod config;
mod fault;
mod machine;
mod program;
mod rng;
pub mod trace;

pub use budget::Budget;
pub use config::{ConfigError, SimConfig, SimConfigBuilder};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use machine::{Machine, RunOutput};
pub use program::{Addr, SimOp, ThreadSpec, ValExpr};
pub use rng::XorShiftStar;
pub use trace::{Trace, TraceEvent, TraceKind};
