//! The stepping x86-TSO machine.

use crate::budget::Budget;
use crate::config::SimConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::program::{SimOp, ThreadSpec};
use crate::rng::XorShiftStar;
use crate::trace::{Trace, TraceEvent, TraceKind};
use perple_obs::metrics::{self as obs_metrics, Hist, Metric};
use perple_obs::trace as obs_trace;

/// Cycles between watchdog polls in budgeted runs; a budgeted run overruns
/// its budget by at most this many cycles of simulation work.
const BUDGET_POLL_INTERVAL: u64 = 64;

/// Seed salt of the dedicated fault PRNG, so injection draws never perturb
/// the main scheduling stream (an empty plan is bit-identical to no plan).
const FAULT_SEED_SALT: u64 = 0xFA17_ED5E_ED00_0001;

/// Event sink the run loop is generic over: the no-trace case
/// monomorphizes to nothing.
trait Sink {
    fn emit(&mut self, cycle: u64, thread: usize, kind: TraceKind);
}

struct NoTrace;

impl Sink for NoTrace {
    #[inline(always)]
    fn emit(&mut self, _cycle: u64, _thread: usize, _kind: TraceKind) {}
}

impl Sink for &mut Trace {
    #[inline]
    fn emit(&mut self, cycle: u64, thread: usize, kind: TraceKind) {
        self.push(TraceEvent {
            cycle,
            thread,
            kind,
        });
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// Per-thread result buffers (`buf_t`): the values recorded by
    /// [`SimOp::Record`], `records_per_iteration` entries per iteration.
    pub bufs: Vec<Vec<u64>>,
    /// Total simulated cycles until every thread finished and every store
    /// buffer drained.
    pub cycles: u64,
    /// Final shared-memory contents.
    pub final_mem: Vec<u64>,
    /// Number of store-buffer drain events.
    pub drains: u64,
    /// Number of injected fault events (see `SimConfig::fault_plan`).
    pub faults: u64,
    /// False iff a watchdog budget expired and the run stopped early; a
    /// partial run's buffers are a prefix of the full run's buffers.
    pub complete: bool,
}

/// The simulated multi-core TSO machine.
///
/// Each simulated cycle, every non-blocked thread executes one timed
/// operation (synchronous-parallel cores); [`SimOp::Record`] bookkeeping is
/// free. Store buffers drain probabilistically each cycle. Threads suffer
/// random short stalls and rare long preemptions, which is what makes
/// free-running (perpetual) threads drift apart — the paper's thread skew.
#[derive(Debug, Clone)]
pub struct Machine {
    config: SimConfig,
    rng: XorShiftStar,
    /// Dedicated injection PRNG (see [`FAULT_SEED_SALT`]).
    fault_rng: XorShiftStar,
}

struct ThreadState {
    index: usize,
    body: Vec<SimOp>,
    pc: usize,
    iter: u64,
    target: u64,
    start_delay: u64,
    blocked_until: u64,
    regs: Vec<u64>,
    buf: Vec<u64>,
    /// FIFO store buffer: (resolved cell, value), oldest first.
    buffer: std::collections::VecDeque<(usize, u64)>,
    done: bool,
    /// Last iteration a stuck fault fired on, so a stall window is bounded
    /// to one firing per covered iteration (otherwise a probability-1 clause
    /// would re-trigger on wake-up forever and the run would never end).
    stuck_fired_iter: u64,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let rng = XorShiftStar::new(config.seed);
        let fault_rng = XorShiftStar::new(config.seed ^ FAULT_SEED_SALT);
        Self {
            config,
            rng,
            fault_rng,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Reseeds the internal PRNGs (e.g. to decorrelate successive runs
    /// while keeping them reproducible).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = XorShiftStar::new(seed);
        self.fault_rng = XorShiftStar::new(seed ^ FAULT_SEED_SALT);
    }

    /// Runs every thread to completion over a shared memory of `mem_cells`
    /// zero-initialized cells and returns the recorded buffers plus timing.
    ///
    /// # Panics
    ///
    /// Panics if a thread body is empty with a non-zero iteration count, or
    /// if an address resolves outside `mem_cells`.
    pub fn run(&mut self, threads: &[ThreadSpec], mem_cells: usize) -> RunOutput {
        self.run_with_init(threads, &vec![0u64; mem_cells])
    }

    /// Like [`Machine::run`] but with explicit initial memory contents.
    pub fn run_with_init(&mut self, threads: &[ThreadSpec], init_mem: &[u64]) -> RunOutput {
        self.run_impl(threads, init_mem, &mut NoTrace, None)
    }

    /// Like [`Machine::run`] but polling `budget` every
    /// [`BUDGET_POLL_INTERVAL`] cycles. If the budget expires the run stops
    /// early with `complete == false`; everything executed up to that point
    /// is identical to the corresponding unbudgeted run, so the partial
    /// buffers are exact prefixes of the full run's buffers.
    pub fn run_budgeted(
        &mut self,
        threads: &[ThreadSpec],
        mem_cells: usize,
        budget: &Budget,
    ) -> RunOutput {
        let init = vec![0u64; mem_cells];
        self.run_impl(threads, &init, &mut NoTrace, Some(budget))
    }

    /// Like [`Machine::run`], additionally recording an event log into
    /// `trace`. Tracing never perturbs execution: a traced run is
    /// bit-identical to an untraced run with the same seed.
    pub fn run_traced(
        &mut self,
        threads: &[ThreadSpec],
        mem_cells: usize,
        trace: &mut Trace,
    ) -> RunOutput {
        let init = vec![0u64; mem_cells];
        let mut sink = trace;
        self.run_impl(threads, &init, &mut sink, None)
    }

    fn run_impl<S: Sink>(
        &mut self,
        threads: &[ThreadSpec],
        init_mem: &[u64],
        sink: &mut S,
        budget: Option<&Budget>,
    ) -> RunOutput {
        let _span = obs_trace::span("simulate");
        for t in threads {
            assert!(
                !t.body.is_empty() || t.iterations == 0,
                "non-trivial thread must have a body"
            );
        }
        let mut mem = init_mem.to_vec();
        let mut states: Vec<ThreadState> = threads
            .iter()
            .enumerate()
            .map(|(index, spec)| ThreadState {
                index,
                body: spec.body.clone(),
                pc: 0,
                iter: 0,
                target: spec.iterations,
                start_delay: spec.start_delay,
                blocked_until: 0,
                regs: vec![0; spec.register_count()],
                buf: Vec::with_capacity(
                    (spec.records_per_iteration() as u64 * spec.iterations) as usize,
                ),
                buffer: std::collections::VecDeque::with_capacity(self.config.buffer_capacity),
                done: spec.iterations == 0,
                stuck_fired_iter: u64::MAX,
            })
            .collect();

        let mut cycle: u64 = 0;
        let mut drains: u64 = 0;
        let mut faults: u64 = 0;
        let mut preempts: u64 = 0;
        let mut micro_preempts: u64 = 0;
        let mut stalls: u64 = 0;
        let mut complete = true;
        loop {
            let all_done = states.iter().all(|s| s.done && s.buffer.is_empty());
            if all_done {
                break;
            }
            if let Some(b) = budget {
                if cycle.is_multiple_of(BUDGET_POLL_INTERVAL) && b.expired() {
                    complete = false;
                    break;
                }
            }
            cycle += 1;

            for s in states.iter_mut() {
                // Drain the oldest buffered store with configured
                // probability; drains continue after the thread retires.
                let tid = s.index;
                if !s.buffer.is_empty() && self.rng.chance(self.config.drain_prob) {
                    let idx = if s.buffer.len() > 1 && self.config.weak_store_order {
                        // PSO-like machine: drain the oldest entry of a
                        // random location (per-location FIFO preserved).
                        random_location_head(&s.buffer, &mut self.rng)
                    } else if s.buffer.len() > 1
                        && self
                            .config
                            .fault_plan
                            .reorder_fault(tid, s.iter)
                            .is_some_and(|spec| self.fault_rng.chance(spec.prob))
                    {
                        // Reorder burst: the same PSO drain, but scoped to
                        // the fault window and drawn from the fault PRNG.
                        faults += 1;
                        sink.emit(cycle, tid, TraceKind::Fault { kind: "reorder" });
                        random_location_head(&s.buffer, &mut self.fault_rng)
                    } else {
                        0
                    };
                    // Invariant: a drain is only scheduled when the buffer
                    // is non-empty, and both index choices above are bounded
                    // by `buffer.len()`.
                    let (cell, v) = s.buffer.remove(idx).expect("non-empty buffer");
                    mem[cell] = v;
                    drains += 1;
                    sink.emit(cycle, tid, TraceKind::Drain { cell, value: v });
                }

                if s.done || cycle < s.start_delay || cycle < s.blocked_until {
                    continue;
                }
                if let Some(spec) = self.config.fault_plan.stuck_fault(tid, s.iter) {
                    if s.stuck_fired_iter != s.iter && self.fault_rng.chance(spec.prob) {
                        let stall = match spec.kind {
                            FaultKind::StuckThread { stall } => stall,
                            // stuck_fault only yields StuckThread clauses.
                            _ => unreachable!("stuck_fault returned a non-stuck clause"),
                        };
                        s.stuck_fired_iter = s.iter;
                        s.blocked_until = cycle + stall;
                        faults += 1;
                        sink.emit(cycle, tid, TraceKind::Fault { kind: "stuck" });
                        sink.emit(
                            cycle,
                            tid,
                            TraceKind::Blocked {
                                until: s.blocked_until,
                            },
                        );
                        continue;
                    }
                }
                if self.rng.chance(self.config.preempt_prob) {
                    s.blocked_until = cycle + self.rng.duration(self.config.mean_preempt);
                    preempts += 1;
                    sink.emit(
                        cycle,
                        tid,
                        TraceKind::Blocked {
                            until: s.blocked_until,
                        },
                    );
                    continue;
                }
                if self.rng.chance(self.config.micro_preempt_prob) {
                    s.blocked_until = cycle + self.rng.duration(self.config.mean_micro_preempt);
                    micro_preempts += 1;
                    sink.emit(
                        cycle,
                        tid,
                        TraceKind::Blocked {
                            until: s.blocked_until,
                        },
                    );
                    continue;
                }
                if self.rng.chance(self.config.stall_prob) {
                    s.blocked_until = cycle + self.rng.duration(self.config.mean_stall);
                    stalls += 1;
                    continue;
                }
                step_thread(
                    s,
                    &mut mem,
                    self.config.buffer_capacity,
                    cycle,
                    sink,
                    &self.config.fault_plan,
                    &mut self.fault_rng,
                    &mut faults,
                );
            }
        }

        // One metrics flush per run (not per cycle): the hot loop only
        // bumps local integers, and observability stays write-only, so a
        // metered run is bit-identical to an unmetered one.
        obs_metrics::add(Metric::SimStoreBufferFlushes, drains);
        obs_metrics::add(Metric::SimPreemptions, preempts);
        obs_metrics::add(Metric::SimMicroPreemptions, micro_preempts);
        obs_metrics::add(Metric::SimStalls, stalls);
        obs_metrics::add(Metric::SimSchedulerCycles, cycle);
        obs_metrics::add(Metric::SimFaultInjections, faults);
        obs_metrics::add(Metric::SimRuns, 1);
        obs_metrics::observe(Hist::SimRunCycles, cycle);

        RunOutput {
            bufs: states
                .iter_mut()
                .map(|s| std::mem::take(&mut s.buf))
                .collect(),
            cycles: cycle,
            final_mem: mem,
            drains,
            faults,
            complete,
        }
    }
}

/// Index of the oldest buffered store of a uniformly random location
/// (per-location FIFO order is preserved; cross-location order is not).
fn random_location_head(
    buffer: &std::collections::VecDeque<(usize, u64)>,
    rng: &mut XorShiftStar,
) -> usize {
    let mut heads: Vec<usize> = Vec::with_capacity(buffer.len());
    let mut seen: Vec<usize> = Vec::with_capacity(buffer.len());
    for (i, &(cell, _)) in buffer.iter().enumerate() {
        if !seen.contains(&cell) {
            seen.push(cell);
            heads.push(i);
        }
    }
    heads[rng.below(heads.len() as u64) as usize]
}

/// Executes free `Record` ops and then at most one timed op for the thread.
#[allow(clippy::too_many_arguments)]
fn step_thread<S: Sink>(
    s: &mut ThreadState,
    mem: &mut [u64],
    buffer_capacity: usize,
    cycle: u64,
    sink: &mut S,
    fault_plan: &FaultPlan,
    fault_rng: &mut XorShiftStar,
    faults: &mut u64,
) {
    // Process at most one full body of free ops to guard against
    // record-only bodies spinning forever within one cycle.
    let mut free_budget = s.body.len();
    loop {
        if s.done {
            return;
        }
        match s.body[s.pc] {
            SimOp::Record { reg } => {
                s.buf.push(s.regs[reg as usize]);
                advance(s);
                free_budget -= 1;
                if free_budget == 0 {
                    return;
                }
            }
            SimOp::Store { addr, expr } => {
                if s.buffer.len() < buffer_capacity {
                    let cell = addr.resolve(s.iter);
                    let mut value = expr.eval(s.iter);
                    if let Some(spec) = fault_plan.store_fault(s.index, s.iter) {
                        if fault_rng.chance(spec.prob) {
                            *faults += 1;
                            sink.emit(
                                cycle,
                                s.index,
                                TraceKind::Fault {
                                    kind: spec.kind.name(),
                                },
                            );
                            if spec.kind == FaultKind::DropStore {
                                // The store retires without ever being
                                // buffered: a lost write.
                                advance(s);
                                return;
                            }
                            // CorruptStore: perturb the value off its
                            // arithmetic sequence (wrong residue).
                            value = value.wrapping_add(1 + fault_rng.below(3));
                        }
                    }
                    s.buffer.push_back((cell, value));
                    sink.emit(cycle, s.index, TraceKind::StoreBuffered { cell, value });
                    advance(s);
                }
                return;
            }
            SimOp::Load { reg, addr } => {
                let cell = addr.resolve(s.iter);
                // Store forwarding: newest buffered store to the same cell.
                let buffered = s.buffer.iter().rev().find(|&&(c, _)| c == cell);
                let forwarded = buffered.is_some();
                let v = buffered.map(|&(_, v)| v).unwrap_or(mem[cell]);
                s.regs[reg as usize] = v;
                sink.emit(
                    cycle,
                    s.index,
                    TraceKind::Load {
                        cell,
                        value: v,
                        forwarded,
                    },
                );
                advance(s);
                return;
            }
            SimOp::Mfence => {
                if s.buffer.is_empty() {
                    sink.emit(cycle, s.index, TraceKind::Fence);
                    advance(s);
                }
                return;
            }
            SimOp::Xchg { reg, addr, expr } => {
                if s.buffer.is_empty() {
                    let cell = addr.resolve(s.iter);
                    let old = mem[cell];
                    let new = expr.eval(s.iter);
                    s.regs[reg as usize] = old;
                    mem[cell] = new;
                    sink.emit(cycle, s.index, TraceKind::Xchg { cell, old, new });
                    advance(s);
                }
                return;
            }
        }
    }
}

fn advance(s: &mut ThreadState) {
    s.pc += 1;
    if s.pc == s.body.len() {
        s.pc = 0;
        s.iter += 1;
        if s.iter >= s.target {
            s.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Addr, SimOp, ThreadSpec, ValExpr};

    fn perpetual_sb(iters: u64) -> Vec<ThreadSpec> {
        let body = |own: u32, other: u32| {
            vec![
                SimOp::Store {
                    addr: Addr::fixed(own),
                    expr: ValExpr::Seq { k: 1, a: 1 },
                },
                SimOp::Load {
                    reg: 0,
                    addr: Addr::fixed(other),
                },
                SimOp::Record { reg: 0 },
            ]
        };
        vec![
            ThreadSpec::new(body(0, 1), iters),
            ThreadSpec::new(body(1, 0), iters),
        ]
    }

    #[test]
    fn buffers_record_every_iteration() {
        let mut m = Machine::new(SimConfig::default().with_seed(1));
        let out = m.run(&perpetual_sb(500), 2);
        assert_eq!(out.bufs[0].len(), 500);
        assert_eq!(out.bufs[1].len(), 500);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let mut a = Machine::new(SimConfig::default().with_seed(99));
        let mut b = Machine::new(SimConfig::default().with_seed(99));
        let oa = a.run(&perpetual_sb(200), 2);
        let ob = b.run(&perpetual_sb(200), 2);
        assert_eq!(oa, ob);
        let mut c = Machine::new(SimConfig::default().with_seed(100));
        let oc = c.run(&perpetual_sb(200), 2);
        assert_ne!(oa.bufs, oc.bufs);
    }

    #[test]
    fn stored_values_form_arithmetic_sequences() {
        // Final memory must hold the last sequence element of each store.
        let mut m = Machine::new(SimConfig::default().with_seed(4));
        let out = m.run(&perpetual_sb(100), 2);
        assert_eq!(out.final_mem, vec![100, 100]); // k*(N-1)+1 = 100
    }

    #[test]
    fn loaded_values_never_exceed_the_partner_sequence() {
        let mut m = Machine::new(SimConfig::default().with_seed(7));
        let out = m.run(&perpetual_sb(1000), 2);
        for buf in &out.bufs {
            for &v in buf {
                assert!(v <= 1000);
            }
        }
    }

    #[test]
    fn weak_outcome_occurs_in_perpetual_sb() {
        // With lockstep-aligned threads and probabilistic drains, some
        // iteration pair must exhibit store buffering: both threads reading
        // a stale (smaller) value than the partner's same-frame store.
        let mut m = Machine::new(SimConfig::default().with_seed(12345));
        let out = m.run(&perpetual_sb(2000), 2);
        // The heuristic condition of the sb target (Figure 8):
        // buf1[buf0[n]] <= n.
        let (b0, b1) = (&out.bufs[0], &out.bufs[1]);
        let hits = (0..b0.len())
            .filter(|&n| {
                let m_idx = b0[n] as usize;
                m_idx < b1.len() && b1[m_idx] <= n as u64
            })
            .count();
        assert!(hits > 0, "no store-buffering frames observed");
    }

    #[test]
    fn mfence_forbids_the_weak_outcome_in_lockstep() {
        // Fenced sb: a load never executes while the own store is buffered,
        // so frames where both sides read strictly-older values than the
        // frame store cannot occur... verified via the exhaustive condition
        // on aligned iterations: never (buf0[n] <= m && buf1[m] <= n).
        let body = |own: u32, other: u32| {
            vec![
                SimOp::Store {
                    addr: Addr::fixed(own),
                    expr: ValExpr::Seq { k: 1, a: 1 },
                },
                SimOp::Mfence,
                SimOp::Load {
                    reg: 0,
                    addr: Addr::fixed(other),
                },
                SimOp::Record { reg: 0 },
            ]
        };
        let threads = vec![
            ThreadSpec::new(body(0, 1), 300),
            ThreadSpec::new(body(1, 0), 300),
        ];
        let mut m = Machine::new(SimConfig::default().with_seed(5));
        let out = m.run(&threads, 2);
        let (b0, b1) = (&out.bufs[0], &out.bufs[1]);
        for (n, &v0) in b0.iter().enumerate() {
            for (mi, &v1) in b1.iter().enumerate() {
                assert!(
                    !(v0 <= mi as u64 && v1 <= n as u64),
                    "forbidden sb frame ({n},{mi}) under mfence"
                );
            }
        }
    }

    #[test]
    fn xchg_is_atomic_and_fencing() {
        // Two threads exchanging on one cell: every old value observed must
        // be distinct (atomicity): no two xchgs may read the same value.
        let threads = vec![
            ThreadSpec::new(
                vec![
                    SimOp::Xchg {
                        reg: 0,
                        addr: Addr::fixed(0),
                        expr: ValExpr::Seq { k: 2, a: 1 },
                    },
                    SimOp::Record { reg: 0 },
                ],
                200,
            ),
            ThreadSpec::new(
                vec![
                    SimOp::Xchg {
                        reg: 0,
                        addr: Addr::fixed(0),
                        expr: ValExpr::Seq { k: 2, a: 2 },
                    },
                    SimOp::Record { reg: 0 },
                ],
                200,
            ),
        ];
        let mut m = Machine::new(SimConfig::default().with_seed(8));
        let out = m.run(&threads, 1);
        let mut seen = std::collections::HashSet::new();
        for buf in &out.bufs {
            for &v in buf {
                if v != 0 {
                    assert!(seen.insert(v), "value {v} read twice: lost atomicity");
                }
            }
        }
    }

    #[test]
    fn strided_addresses_isolate_iterations() {
        // litmus7-style per-iteration cells: iteration n writes cell 2n and
        // reads cell 2n+1; no interference across iterations.
        let body0 = vec![
            SimOp::Store {
                addr: Addr::strided(0, 2),
                expr: ValExpr::Const(1),
            },
            SimOp::Load {
                reg: 0,
                addr: Addr::strided(1, 2),
            },
            SimOp::Record { reg: 0 },
        ];
        let body1 = vec![
            SimOp::Store {
                addr: Addr::strided(1, 2),
                expr: ValExpr::Const(1),
            },
            SimOp::Load {
                reg: 0,
                addr: Addr::strided(0, 2),
            },
            SimOp::Record { reg: 0 },
        ];
        let threads = vec![ThreadSpec::new(body0, 50), ThreadSpec::new(body1, 50)];
        let mut m = Machine::new(SimConfig::default().with_seed(3));
        let out = m.run(&threads, 100);
        // Every cell ends at 1: each iteration's stores landed in its own pair.
        assert!(out.final_mem.iter().all(|&v| v == 1));
        for buf in &out.bufs {
            for &v in buf {
                assert!(v == 0 || v == 1);
            }
        }
    }

    #[test]
    fn start_delay_serializes_threads() {
        // With a huge start delay on thread 1, thread 0 finishes first and
        // thread 1 observes all its stores: no weak outcome possible.
        let body0 = vec![
            SimOp::Store {
                addr: Addr::fixed(0),
                expr: ValExpr::Const(1),
            },
            SimOp::Load {
                reg: 0,
                addr: Addr::fixed(1),
            },
            SimOp::Record { reg: 0 },
        ];
        let body1 = vec![
            SimOp::Store {
                addr: Addr::fixed(1),
                expr: ValExpr::Const(1),
            },
            SimOp::Load {
                reg: 0,
                addr: Addr::fixed(0),
            },
            SimOp::Record { reg: 0 },
        ];
        let threads = vec![
            ThreadSpec::new(body0, 1),
            ThreadSpec::new(body1, 1).with_start_delay(100_000),
        ];
        let mut m = Machine::new(SimConfig::default().with_seed(2));
        let out = m.run(&threads, 2);
        assert_eq!(out.bufs[1], vec![1], "delayed thread must see the store");
        assert!(out.cycles >= 100_000);
    }

    #[test]
    fn zero_iteration_threads_finish_immediately() {
        let threads = vec![ThreadSpec::new(vec![], 0)];
        let mut m = Machine::new(SimConfig::default());
        let out = m.run(&threads, 1);
        assert_eq!(out.bufs[0].len(), 0);
        assert_eq!(out.drains, 0);
    }

    #[test]
    fn drains_are_counted() {
        let mut m = Machine::new(SimConfig::default().with_seed(6));
        let out = m.run(&perpetual_sb(100), 2);
        assert_eq!(out.drains, 200, "every store must drain exactly once");
    }

    #[test]
    fn empty_and_non_covering_plans_change_nothing() {
        // A plan whose windows never cover an executed iteration makes zero
        // fault-PRNG draws, so the run is bit-identical to a plan-free run.
        let mut plain = Machine::new(SimConfig::default().with_seed(21));
        let base = plain.run(&perpetual_sb(100), 2);
        let plan = crate::FaultPlan::parse("drop@t0:5000..6000,stuck@*:9000..9001:c50").unwrap();
        let mut faulty = Machine::new(SimConfig::default().with_seed(21).with_fault_plan(plan));
        let out = faulty.run(&perpetual_sb(100), 2);
        assert_eq!(base, out);
        assert_eq!(out.faults, 0);
        assert!(out.complete);
    }

    #[test]
    fn dropped_stores_never_reach_memory() {
        let plan = crate::FaultPlan::parse("drop@t0:0..100").unwrap();
        let mut m = Machine::new(SimConfig::default().with_seed(33).with_fault_plan(plan));
        let out = m.run(&perpetual_sb(100), 2);
        assert_eq!(out.faults, 100, "every t0 store must drop");
        assert_eq!(out.drains, 100, "only t1's stores drain");
        assert_eq!(out.final_mem[0], 0, "t0's cell never written");
        assert_eq!(out.final_mem[1], 100);
        assert!(out.bufs[1].iter().all(|&v| v == 0), "t1 only sees zeros");
    }

    #[test]
    fn corrupted_stores_leave_the_sequence() {
        let plan = crate::FaultPlan::parse("corrupt@t0:0..100").unwrap();
        let mut m = Machine::new(SimConfig::default().with_seed(34).with_fault_plan(plan));
        let out = m.run(&perpetual_sb(100), 2);
        assert_eq!(out.faults, 100);
        // Last store was 100, corrupted by +1..=3.
        assert!(
            (101..=103).contains(&out.final_mem[0]),
            "mem[0] = {}",
            out.final_mem[0]
        );
        assert_eq!(out.final_mem[1], 100, "t1 unaffected");
    }

    #[test]
    fn stuck_thread_stalls_once_per_covered_iteration() {
        let plan = crate::FaultPlan::parse("stuck@t0:50..51:c50000").unwrap();
        let mut base = Machine::new(SimConfig::default().with_seed(35));
        let unfaulted = base.run(&perpetual_sb(100), 2);
        let mut m = Machine::new(SimConfig::default().with_seed(35).with_fault_plan(plan));
        let out = m.run(&perpetual_sb(100), 2);
        assert_eq!(out.faults, 1, "one firing for the one covered iteration");
        assert!(out.complete, "bounded stall: the run still terminates");
        assert!(
            out.cycles >= unfaulted.cycles + 40_000,
            "stall must inflate the run: {} vs {}",
            out.cycles,
            unfaulted.cycles
        );
        assert_eq!(out.bufs[0].len(), 100, "all iterations still complete");
    }

    #[test]
    fn reorder_burst_fires_within_its_window() {
        // Two stores to different cells per iteration keep the buffer
        // multi-location, so burst drains can pick a non-FIFO head.
        let body = vec![
            SimOp::Store {
                addr: Addr::fixed(0),
                expr: ValExpr::Seq { k: 1, a: 1 },
            },
            SimOp::Store {
                addr: Addr::fixed(1),
                expr: ValExpr::Seq { k: 1, a: 1 },
            },
            SimOp::Record { reg: 0 },
        ];
        let threads = vec![ThreadSpec::new(body, 2000)];
        let plan = crate::FaultPlan::parse("reorder@t0:0..2000").unwrap();
        let mut m = Machine::new(SimConfig::default().with_seed(36).with_fault_plan(plan));
        let out = m.run(&threads, 2);
        assert!(out.faults > 0, "burst window covered the whole run");
        assert!(out.complete);
    }

    #[test]
    fn budgeted_run_with_unlimited_budget_matches_plain_run() {
        let mut a = Machine::new(SimConfig::default().with_seed(50));
        let plain = a.run(&perpetual_sb(200), 2);
        let mut b = Machine::new(SimConfig::default().with_seed(50));
        let budgeted = b.run_budgeted(&perpetual_sb(200), 2, &crate::Budget::unlimited());
        assert_eq!(plain, budgeted);
        assert!(budgeted.complete);
    }

    #[test]
    fn expired_budget_truncates_to_a_prefix() {
        let mut a = Machine::new(SimConfig::default().with_seed(51));
        let full = a.run(&perpetual_sb(500), 2);
        let mut b = Machine::new(SimConfig::default().with_seed(51));
        let part = b.run_budgeted(&perpetual_sb(500), 2, &crate::Budget::with_poll_limit(5));
        assert!(!part.complete, "tiny poll limit must expire mid-run");
        assert!(part.cycles < full.cycles);
        for (pb, fb) in part.bufs.iter().zip(&full.bufs) {
            assert!(pb.len() < fb.len());
            assert_eq!(
                pb.as_slice(),
                &fb[..pb.len()],
                "partial buf must be a prefix"
            );
        }
    }

    #[test]
    fn already_expired_budget_yields_empty_run() {
        let mut m = Machine::new(SimConfig::default().with_seed(52));
        let out = m.run_budgeted(&perpetual_sb(100), 2, &crate::Budget::with_poll_limit(0));
        assert!(!out.complete);
        assert_eq!(out.cycles, 0);
        assert!(out.bufs.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn reseed_changes_future_runs() {
        let mut m = Machine::new(SimConfig::default().with_seed(42));
        let a = m.run(&perpetual_sb(100), 2);
        m.reseed(42);
        let b = m.run(&perpetual_sb(100), 2);
        assert_eq!(a, b, "reseeding with the same seed reproduces the run");
        assert_eq!(m.config().seed, 42);
    }
}
