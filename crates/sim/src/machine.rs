//! The stepping x86-TSO machine.

use crate::config::SimConfig;
use crate::program::{SimOp, ThreadSpec};
use crate::rng::XorShiftStar;
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Event sink the run loop is generic over: the no-trace case
/// monomorphizes to nothing.
trait Sink {
    fn emit(&mut self, cycle: u64, thread: usize, kind: TraceKind);
}

struct NoTrace;

impl Sink for NoTrace {
    #[inline(always)]
    fn emit(&mut self, _cycle: u64, _thread: usize, _kind: TraceKind) {}
}

impl Sink for &mut Trace {
    #[inline]
    fn emit(&mut self, cycle: u64, thread: usize, kind: TraceKind) {
        self.push(TraceEvent { cycle, thread, kind });
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// Per-thread result buffers (`buf_t`): the values recorded by
    /// [`SimOp::Record`], `records_per_iteration` entries per iteration.
    pub bufs: Vec<Vec<u64>>,
    /// Total simulated cycles until every thread finished and every store
    /// buffer drained.
    pub cycles: u64,
    /// Final shared-memory contents.
    pub final_mem: Vec<u64>,
    /// Number of store-buffer drain events.
    pub drains: u64,
}

/// The simulated multi-core TSO machine.
///
/// Each simulated cycle, every non-blocked thread executes one timed
/// operation (synchronous-parallel cores); [`SimOp::Record`] bookkeeping is
/// free. Store buffers drain probabilistically each cycle. Threads suffer
/// random short stalls and rare long preemptions, which is what makes
/// free-running (perpetual) threads drift apart — the paper's thread skew.
#[derive(Debug, Clone)]
pub struct Machine {
    config: SimConfig,
    rng: XorShiftStar,
}

struct ThreadState {
    index: usize,
    body: Vec<SimOp>,
    pc: usize,
    iter: u64,
    target: u64,
    start_delay: u64,
    blocked_until: u64,
    regs: Vec<u64>,
    buf: Vec<u64>,
    /// FIFO store buffer: (resolved cell, value), oldest first.
    buffer: std::collections::VecDeque<(usize, u64)>,
    done: bool,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let rng = XorShiftStar::new(config.seed);
        Self { config, rng }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Reseeds the internal PRNG (e.g. to decorrelate successive runs while
    /// keeping them reproducible).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = XorShiftStar::new(seed);
    }

    /// Runs every thread to completion over a shared memory of `mem_cells`
    /// zero-initialized cells and returns the recorded buffers plus timing.
    ///
    /// # Panics
    ///
    /// Panics if a thread body is empty with a non-zero iteration count, or
    /// if an address resolves outside `mem_cells`.
    pub fn run(&mut self, threads: &[ThreadSpec], mem_cells: usize) -> RunOutput {
        self.run_with_init(threads, &vec![0u64; mem_cells])
    }

    /// Like [`Machine::run`] but with explicit initial memory contents.
    pub fn run_with_init(&mut self, threads: &[ThreadSpec], init_mem: &[u64]) -> RunOutput {
        self.run_impl(threads, init_mem, &mut NoTrace)
    }

    /// Like [`Machine::run`], additionally recording an event log into
    /// `trace`. Tracing never perturbs execution: a traced run is
    /// bit-identical to an untraced run with the same seed.
    pub fn run_traced(
        &mut self,
        threads: &[ThreadSpec],
        mem_cells: usize,
        trace: &mut Trace,
    ) -> RunOutput {
        let init = vec![0u64; mem_cells];
        let mut sink = trace;
        self.run_impl(threads, &init, &mut sink)
    }

    fn run_impl<S: Sink>(
        &mut self,
        threads: &[ThreadSpec],
        init_mem: &[u64],
        sink: &mut S,
    ) -> RunOutput {
        for t in threads {
            assert!(
                !t.body.is_empty() || t.iterations == 0,
                "non-trivial thread must have a body"
            );
        }
        let mut mem = init_mem.to_vec();
        let mut states: Vec<ThreadState> = threads
            .iter()
            .enumerate()
            .map(|(index, spec)| ThreadState {
                index,
                body: spec.body.clone(),
                pc: 0,
                iter: 0,
                target: spec.iterations,
                start_delay: spec.start_delay,
                blocked_until: 0,
                regs: vec![0; spec.register_count()],
                buf: Vec::with_capacity(
                    (spec.records_per_iteration() as u64 * spec.iterations) as usize,
                ),
                buffer: std::collections::VecDeque::with_capacity(self.config.buffer_capacity),
                done: spec.iterations == 0,
            })
            .collect();

        let mut cycle: u64 = 0;
        let mut drains: u64 = 0;
        loop {
            let all_done =
                states.iter().all(|s| s.done && s.buffer.is_empty());
            if all_done {
                break;
            }
            cycle += 1;

            for s in states.iter_mut() {
                // Drain the oldest buffered store with configured
                // probability; drains continue after the thread retires.
                let tid = s.index;
                if !s.buffer.is_empty() && self.rng.chance(self.config.drain_prob) {
                    let idx = if self.config.weak_store_order && s.buffer.len() > 1 {
                        // PSO-like machine: drain the oldest entry of a
                        // random location (per-location FIFO preserved).
                        let mut heads: Vec<usize> = Vec::with_capacity(s.buffer.len());
                        let mut seen: Vec<usize> = Vec::with_capacity(s.buffer.len());
                        for (i, &(cell, _)) in s.buffer.iter().enumerate() {
                            if !seen.contains(&cell) {
                                seen.push(cell);
                                heads.push(i);
                            }
                        }
                        heads[self.rng.below(heads.len() as u64) as usize]
                    } else {
                        0
                    };
                    let (cell, v) = s.buffer.remove(idx).expect("non-empty buffer");
                    mem[cell] = v;
                    drains += 1;
                    sink.emit(cycle, tid, TraceKind::Drain { cell, value: v });
                }

                if s.done || cycle < s.start_delay || cycle < s.blocked_until {
                    continue;
                }
                if self.rng.chance(self.config.preempt_prob) {
                    s.blocked_until = cycle + self.rng.duration(self.config.mean_preempt);
                    sink.emit(cycle, tid, TraceKind::Blocked { until: s.blocked_until });
                    continue;
                }
                if self.rng.chance(self.config.micro_preempt_prob) {
                    s.blocked_until = cycle + self.rng.duration(self.config.mean_micro_preempt);
                    sink.emit(cycle, tid, TraceKind::Blocked { until: s.blocked_until });
                    continue;
                }
                if self.rng.chance(self.config.stall_prob) {
                    s.blocked_until = cycle + self.rng.duration(self.config.mean_stall);
                    continue;
                }
                step_thread(s, &mut mem, self.config.buffer_capacity, cycle, sink);
            }
        }

        RunOutput {
            bufs: states.iter_mut().map(|s| std::mem::take(&mut s.buf)).collect(),
            cycles: cycle,
            final_mem: mem,
            drains,
        }
    }
}

/// Executes free `Record` ops and then at most one timed op for the thread.
fn step_thread<S: Sink>(
    s: &mut ThreadState,
    mem: &mut [u64],
    buffer_capacity: usize,
    cycle: u64,
    sink: &mut S,
) {
    // Process at most one full body of free ops to guard against
    // record-only bodies spinning forever within one cycle.
    let mut free_budget = s.body.len();
    loop {
        if s.done {
            return;
        }
        match s.body[s.pc] {
            SimOp::Record { reg } => {
                s.buf.push(s.regs[reg as usize]);
                advance(s);
                free_budget -= 1;
                if free_budget == 0 {
                    return;
                }
            }
            SimOp::Store { addr, expr } => {
                if s.buffer.len() < buffer_capacity {
                    let cell = addr.resolve(s.iter);
                    let value = expr.eval(s.iter);
                    s.buffer.push_back((cell, value));
                    sink.emit(cycle, s.index, TraceKind::StoreBuffered { cell, value });
                    advance(s);
                }
                return;
            }
            SimOp::Load { reg, addr } => {
                let cell = addr.resolve(s.iter);
                // Store forwarding: newest buffered store to the same cell.
                let buffered = s.buffer.iter().rev().find(|&&(c, _)| c == cell);
                let forwarded = buffered.is_some();
                let v = buffered.map(|&(_, v)| v).unwrap_or(mem[cell]);
                s.regs[reg as usize] = v;
                sink.emit(cycle, s.index, TraceKind::Load { cell, value: v, forwarded });
                advance(s);
                return;
            }
            SimOp::Mfence => {
                if s.buffer.is_empty() {
                    sink.emit(cycle, s.index, TraceKind::Fence);
                    advance(s);
                }
                return;
            }
            SimOp::Xchg { reg, addr, expr } => {
                if s.buffer.is_empty() {
                    let cell = addr.resolve(s.iter);
                    let old = mem[cell];
                    let new = expr.eval(s.iter);
                    s.regs[reg as usize] = old;
                    mem[cell] = new;
                    sink.emit(cycle, s.index, TraceKind::Xchg { cell, old, new });
                    advance(s);
                }
                return;
            }
        }
    }
}

fn advance(s: &mut ThreadState) {
    s.pc += 1;
    if s.pc == s.body.len() {
        s.pc = 0;
        s.iter += 1;
        if s.iter >= s.target {
            s.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Addr, SimOp, ThreadSpec, ValExpr};

    fn perpetual_sb(iters: u64) -> Vec<ThreadSpec> {
        let body = |own: u32, other: u32| {
            vec![
                SimOp::Store { addr: Addr::fixed(own), expr: ValExpr::Seq { k: 1, a: 1 } },
                SimOp::Load { reg: 0, addr: Addr::fixed(other) },
                SimOp::Record { reg: 0 },
            ]
        };
        vec![
            ThreadSpec::new(body(0, 1), iters),
            ThreadSpec::new(body(1, 0), iters),
        ]
    }

    #[test]
    fn buffers_record_every_iteration() {
        let mut m = Machine::new(SimConfig::default().with_seed(1));
        let out = m.run(&perpetual_sb(500), 2);
        assert_eq!(out.bufs[0].len(), 500);
        assert_eq!(out.bufs[1].len(), 500);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let mut a = Machine::new(SimConfig::default().with_seed(99));
        let mut b = Machine::new(SimConfig::default().with_seed(99));
        let oa = a.run(&perpetual_sb(200), 2);
        let ob = b.run(&perpetual_sb(200), 2);
        assert_eq!(oa, ob);
        let mut c = Machine::new(SimConfig::default().with_seed(100));
        let oc = c.run(&perpetual_sb(200), 2);
        assert_ne!(oa.bufs, oc.bufs);
    }

    #[test]
    fn stored_values_form_arithmetic_sequences() {
        // Final memory must hold the last sequence element of each store.
        let mut m = Machine::new(SimConfig::default().with_seed(4));
        let out = m.run(&perpetual_sb(100), 2);
        assert_eq!(out.final_mem, vec![100, 100]); // k*(N-1)+1 = 100
    }

    #[test]
    fn loaded_values_never_exceed_the_partner_sequence() {
        let mut m = Machine::new(SimConfig::default().with_seed(7));
        let out = m.run(&perpetual_sb(1000), 2);
        for buf in &out.bufs {
            for &v in buf {
                assert!(v <= 1000);
            }
        }
    }

    #[test]
    fn weak_outcome_occurs_in_perpetual_sb() {
        // With lockstep-aligned threads and probabilistic drains, some
        // iteration pair must exhibit store buffering: both threads reading
        // a stale (smaller) value than the partner's same-frame store.
        let mut m = Machine::new(SimConfig::default().with_seed(12345));
        let out = m.run(&perpetual_sb(2000), 2);
        // The heuristic condition of the sb target (Figure 8):
        // buf1[buf0[n]] <= n.
        let (b0, b1) = (&out.bufs[0], &out.bufs[1]);
        let hits = (0..b0.len())
            .filter(|&n| {
                let m_idx = b0[n] as usize;
                m_idx < b1.len() && b1[m_idx] <= n as u64
            })
            .count();
        assert!(hits > 0, "no store-buffering frames observed");
    }

    #[test]
    fn mfence_forbids_the_weak_outcome_in_lockstep() {
        // Fenced sb: a load never executes while the own store is buffered,
        // so frames where both sides read strictly-older values than the
        // frame store cannot occur... verified via the exhaustive condition
        // on aligned iterations: never (buf0[n] <= m && buf1[m] <= n).
        let body = |own: u32, other: u32| {
            vec![
                SimOp::Store { addr: Addr::fixed(own), expr: ValExpr::Seq { k: 1, a: 1 } },
                SimOp::Mfence,
                SimOp::Load { reg: 0, addr: Addr::fixed(other) },
                SimOp::Record { reg: 0 },
            ]
        };
        let threads = vec![
            ThreadSpec::new(body(0, 1), 300),
            ThreadSpec::new(body(1, 0), 300),
        ];
        let mut m = Machine::new(SimConfig::default().with_seed(5));
        let out = m.run(&threads, 2);
        let (b0, b1) = (&out.bufs[0], &out.bufs[1]);
        for n in 0..300usize {
            for mi in 0..300usize {
                assert!(
                    !(b0[n] <= mi as u64 && b1[mi] <= n as u64),
                    "forbidden sb frame ({n},{mi}) under mfence"
                );
            }
        }
    }

    #[test]
    fn xchg_is_atomic_and_fencing() {
        // Two threads exchanging on one cell: every old value observed must
        // be distinct (atomicity): no two xchgs may read the same value.
        let threads = vec![
            ThreadSpec::new(
                vec![
                    SimOp::Xchg { reg: 0, addr: Addr::fixed(0), expr: ValExpr::Seq { k: 2, a: 1 } },
                    SimOp::Record { reg: 0 },
                ],
                200,
            ),
            ThreadSpec::new(
                vec![
                    SimOp::Xchg { reg: 0, addr: Addr::fixed(0), expr: ValExpr::Seq { k: 2, a: 2 } },
                    SimOp::Record { reg: 0 },
                ],
                200,
            ),
        ];
        let mut m = Machine::new(SimConfig::default().with_seed(8));
        let out = m.run(&threads, 1);
        let mut seen = std::collections::HashSet::new();
        for buf in &out.bufs {
            for &v in buf {
                if v != 0 {
                    assert!(seen.insert(v), "value {v} read twice: lost atomicity");
                }
            }
        }
    }

    #[test]
    fn strided_addresses_isolate_iterations() {
        // litmus7-style per-iteration cells: iteration n writes cell 2n and
        // reads cell 2n+1; no interference across iterations.
        let body0 = vec![
            SimOp::Store { addr: Addr::strided(0, 2), expr: ValExpr::Const(1) },
            SimOp::Load { reg: 0, addr: Addr::strided(1, 2) },
            SimOp::Record { reg: 0 },
        ];
        let body1 = vec![
            SimOp::Store { addr: Addr::strided(1, 2), expr: ValExpr::Const(1) },
            SimOp::Load { reg: 0, addr: Addr::strided(0, 2) },
            SimOp::Record { reg: 0 },
        ];
        let threads = vec![ThreadSpec::new(body0, 50), ThreadSpec::new(body1, 50)];
        let mut m = Machine::new(SimConfig::default().with_seed(3));
        let out = m.run(&threads, 100);
        // Every cell ends at 1: each iteration's stores landed in its own pair.
        assert!(out.final_mem.iter().all(|&v| v == 1));
        for buf in &out.bufs {
            for &v in buf {
                assert!(v == 0 || v == 1);
            }
        }
    }

    #[test]
    fn start_delay_serializes_threads() {
        // With a huge start delay on thread 1, thread 0 finishes first and
        // thread 1 observes all its stores: no weak outcome possible.
        let body0 = vec![
            SimOp::Store { addr: Addr::fixed(0), expr: ValExpr::Const(1) },
            SimOp::Load { reg: 0, addr: Addr::fixed(1) },
            SimOp::Record { reg: 0 },
        ];
        let body1 = vec![
            SimOp::Store { addr: Addr::fixed(1), expr: ValExpr::Const(1) },
            SimOp::Load { reg: 0, addr: Addr::fixed(0) },
            SimOp::Record { reg: 0 },
        ];
        let threads = vec![
            ThreadSpec::new(body0, 1),
            ThreadSpec::new(body1, 1).with_start_delay(100_000),
        ];
        let mut m = Machine::new(SimConfig::default().with_seed(2));
        let out = m.run(&threads, 2);
        assert_eq!(out.bufs[1], vec![1], "delayed thread must see the store");
        assert!(out.cycles >= 100_000);
    }

    #[test]
    fn zero_iteration_threads_finish_immediately() {
        let threads = vec![ThreadSpec::new(vec![], 0)];
        let mut m = Machine::new(SimConfig::default());
        let out = m.run(&threads, 1);
        assert_eq!(out.bufs[0].len(), 0);
        assert_eq!(out.drains, 0);
    }

    #[test]
    fn drains_are_counted() {
        let mut m = Machine::new(SimConfig::default().with_seed(6));
        let out = m.run(&perpetual_sb(100), 2);
        assert_eq!(out.drains, 200, "every store must drain exactly once");
    }

    #[test]
    fn reseed_changes_future_runs() {
        let mut m = Machine::new(SimConfig::default().with_seed(42));
        let a = m.run(&perpetual_sb(100), 2);
        m.reseed(42);
        let b = m.run(&perpetual_sb(100), 2);
        assert_eq!(a, b, "reseeding with the same seed reproduces the run");
        assert_eq!(m.config().seed, 42);
    }
}
