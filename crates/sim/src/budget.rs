//! Cooperative cancellation/budget tokens.
//!
//! Long-running stages — the machine's cycle loop, the exhaustive frame
//! scan, the heuristic pivot scan — poll a shared [`Budget`] at a fixed
//! cadence and stop early when it expires, returning a partial,
//! clearly-flagged result instead of running unbounded. A budget can
//! expire three ways:
//!
//! * a **wall-clock deadline** (`--timeout-ms`): the production watchdog;
//! * an explicit **cancel** from another thread (atomic flag);
//! * a deterministic **poll limit**: expires after a fixed number of
//!   `expired()` calls, independent of wall time. Because every stage
//!   polls on a deterministic schedule, a poll-limited run truncates at
//!   exactly the same point on every machine — which is what lets tests
//!   assert that watchdog-truncated results are prefixes of untruncated
//!   ones.
//!
//! Expiry is sticky: once a budget reports expired it stays expired, so a
//! stage that polls in several loops can never resume past its cutoff.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A shareable watchdog: deadline + cancel flag + deterministic poll limit.
///
/// Cheap to poll (one atomic increment and one or two atomic loads; the
/// `Instant::now()` call only happens while a deadline is armed and the
/// budget has not yet expired).
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    poll_limit: Option<u64>,
    polls: AtomicU64,
    expired: AtomicBool,
}

impl Budget {
    /// A budget that never expires (but can still be [`Budget::cancel`]ed).
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            poll_limit: None,
            polls: AtomicU64::new(0),
            expired: AtomicBool::new(false),
        }
    }

    /// Expires once `timeout` has elapsed from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + timeout),
            ..Self::unlimited()
        }
    }

    /// Convenience wall-clock constructor for CLI `--timeout-ms` flags.
    pub fn with_timeout_ms(ms: u64) -> Self {
        Self::with_timeout(Duration::from_millis(ms))
    }

    /// Deterministic budget: the first `polls` calls to [`Budget::expired`]
    /// return `false`, every later call returns `true`. Wall-clock-free,
    /// so truncation points reproduce exactly across runs and machines.
    pub fn with_poll_limit(polls: u64) -> Self {
        Self {
            poll_limit: Some(polls),
            ..Self::unlimited()
        }
    }

    /// Cancels the budget: every subsequent [`Budget::expired`] poll (from
    /// any thread) returns `true`.
    pub fn cancel(&self) {
        self.expired.store(true, Ordering::Release);
    }

    /// Polls the budget; `true` means the caller must stop and return its
    /// partial result. Sticky: once `true`, always `true`.
    pub fn expired(&self) -> bool {
        if self.expired.load(Ordering::Acquire) {
            return true;
        }
        let polls = self.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.poll_limit {
            if polls > limit {
                self.expired.store(true, Ordering::Release);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.expired.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// True if the budget has already expired, **without** consuming a
    /// poll (pure observation, usable after a stage returns).
    pub fn is_expired(&self) -> bool {
        self.expired.load(Ordering::Acquire)
    }
}

impl Default for Budget {
    /// The default budget is unlimited.
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(!b.expired());
        }
        assert!(!b.is_expired());
    }

    #[test]
    fn poll_limit_expires_exactly_after_n_polls() {
        let b = Budget::with_poll_limit(3);
        assert!(!b.expired());
        assert!(!b.expired());
        assert!(!b.expired());
        assert!(b.expired(), "poll 4 must expire");
        assert!(b.expired(), "expiry is sticky");
        assert!(b.is_expired());
    }

    #[test]
    fn zero_poll_limit_expires_immediately() {
        let b = Budget::with_poll_limit(0);
        assert!(b.expired());
    }

    #[test]
    fn cancel_expires_from_any_thread() {
        let b = Budget::unlimited();
        assert!(!b.expired());
        std::thread::scope(|s| {
            s.spawn(|| b.cancel());
        });
        assert!(b.expired());
        assert!(b.is_expired());
    }

    #[test]
    fn deadline_in_the_past_expires() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(b.expired());
    }

    #[test]
    fn generous_deadline_does_not_expire_yet() {
        let b = Budget::with_timeout_ms(60_000);
        assert!(!b.expired());
        assert!(!b.is_expired());
    }
}
