//! Execution tracing: a bounded event log of one simulated run.
//!
//! Debugging a memory-consistency harness means answering "which store did
//! that load actually observe, and when did it drain?" — the trace records
//! every executed memory operation, buffer drain, and scheduling gap with
//! its cycle stamp, so a surprising counter result can be replayed against
//! the exact interleaving that produced it (runs are deterministic per
//! seed).

use std::fmt;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Thread index.
    pub thread: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A store entered the thread's buffer.
    StoreBuffered {
        /// Resolved memory cell.
        cell: usize,
        /// Stored value.
        value: u64,
    },
    /// A buffered store drained to memory.
    Drain {
        /// Resolved memory cell.
        cell: usize,
        /// Drained value.
        value: u64,
    },
    /// A load executed (possibly forwarded from the own buffer).
    Load {
        /// Resolved memory cell.
        cell: usize,
        /// Observed value.
        value: u64,
        /// True if the value came from the own store buffer.
        forwarded: bool,
    },
    /// An `MFENCE` retired (buffer was empty).
    Fence,
    /// A locked exchange executed atomically.
    Xchg {
        /// Resolved memory cell.
        cell: usize,
        /// Previous value (loaded).
        old: u64,
        /// New value (stored).
        new: u64,
    },
    /// The thread was blocked (preemption or stall) until the given cycle.
    Blocked {
        /// First cycle at which the thread may run again.
        until: u64,
    },
    /// A scheduled fault fired (see `perple_sim::FaultPlan`).
    Fault {
        /// Short fault-kind name (`drop`, `corrupt`, `stuck`, `reorder`).
        kind: &'static str,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] P{} ", self.cycle, self.thread)?;
        match self.kind {
            TraceKind::StoreBuffered { cell, value } => {
                write!(f, "store mem[{cell}] <- {value} (buffered)")
            }
            TraceKind::Drain { cell, value } => write!(f, "drain mem[{cell}] <- {value}"),
            TraceKind::Load {
                cell,
                value,
                forwarded,
            } => write!(
                f,
                "load  mem[{cell}] -> {value}{}",
                if forwarded { " (forwarded)" } else { "" }
            ),
            TraceKind::Fence => write!(f, "mfence"),
            TraceKind::Xchg { cell, old, new } => {
                write!(f, "xchg  mem[{cell}]: {old} -> {new} (locked)")
            }
            TraceKind::Blocked { until } => write!(f, "blocked until cycle {until}"),
            TraceKind::Fault { kind } => write!(f, "fault injected ({kind})"),
        }
    }
}

/// A bounded trace sink: recording stops (and is flagged) once `capacity`
/// events are collected, so tracing long runs cannot exhaust memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a sink holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (drops and counts once full).
    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in cycle order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were dropped after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events of one thread.
    pub fn for_thread(&self, thread: usize) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.thread == thread)
    }

    /// Renders the full log, one event per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{e}");
        }
        if self.dropped > 0 {
            let _ = writeln!(
                s,
                "... {} further events dropped (capacity {})",
                self.dropped, self.capacity
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, Machine, SimConfig, SimOp, ThreadSpec, ValExpr};

    fn sb_specs(n: u64) -> Vec<ThreadSpec> {
        let body = |own: u32, other: u32| {
            vec![
                SimOp::Store {
                    addr: Addr::fixed(own),
                    expr: ValExpr::Seq { k: 1, a: 1 },
                },
                SimOp::Load {
                    reg: 0,
                    addr: Addr::fixed(other),
                },
                SimOp::Record { reg: 0 },
            ]
        };
        vec![
            ThreadSpec::new(body(0, 1), n),
            ThreadSpec::new(body(1, 0), n),
        ]
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let mut m1 = Machine::new(SimConfig::default().with_seed(77));
        let plain = m1.run(&sb_specs(50), 2);
        let mut m2 = Machine::new(SimConfig::default().with_seed(77));
        let mut trace = Trace::with_capacity(100_000);
        let traced = m2.run_traced(&sb_specs(50), 2, &mut trace);
        assert_eq!(plain, traced, "tracing must not perturb execution");
        assert!(!trace.events().is_empty());
    }

    #[test]
    fn every_store_has_a_matching_drain() {
        let mut m = Machine::new(SimConfig::default().with_seed(5));
        let mut trace = Trace::with_capacity(100_000);
        let out = m.run_traced(&sb_specs(40), 2, &mut trace);
        let stores = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::StoreBuffered { .. }))
            .count();
        let drains = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Drain { .. }))
            .count();
        assert_eq!(stores, drains);
        assert_eq!(out.drains as usize, drains);
    }

    #[test]
    fn drains_follow_their_stores_in_time_and_order() {
        let mut m = Machine::new(SimConfig::default().with_seed(6));
        let mut trace = Trace::with_capacity(100_000);
        m.run_traced(&sb_specs(40), 2, &mut trace);
        for t in 0..2 {
            let mut pending: std::collections::VecDeque<(u64, u64)> =
                std::collections::VecDeque::new();
            for e in trace.for_thread(t) {
                match e.kind {
                    TraceKind::StoreBuffered { value, .. } => {
                        pending.push_back((value, e.cycle));
                    }
                    TraceKind::Drain { value, .. } => {
                        let (v, stored_at) = pending.pop_front().expect("drain without store");
                        assert_eq!(v, value, "TSO drains must be FIFO");
                        assert!(e.cycle >= stored_at);
                    }
                    _ => {}
                }
            }
            assert!(pending.is_empty(), "undrained stores at end of run");
        }
    }

    #[test]
    fn forwarding_is_flagged() {
        // A thread storing then loading the same cell must forward.
        let body = vec![
            SimOp::Store {
                addr: Addr::fixed(0),
                expr: ValExpr::Const(7),
            },
            SimOp::Load {
                reg: 0,
                addr: Addr::fixed(0),
            },
            SimOp::Record { reg: 0 },
        ];
        let mut m = Machine::new(SimConfig::default().with_seed(9));
        let mut trace = Trace::with_capacity(1_000);
        let out = m.run_traced(&[ThreadSpec::new(body, 5)], 1, &mut trace);
        assert!(out.bufs[0].iter().all(|&v| v == 7));
        let forwarded = trace
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::Load {
                        forwarded: true,
                        ..
                    }
                )
            })
            .count();
        assert!(
            forwarded > 0,
            "same-cell load after store must forward at least once"
        );
    }

    #[test]
    fn capacity_bounds_are_respected() {
        let mut m = Machine::new(SimConfig::default().with_seed(10));
        let mut trace = Trace::with_capacity(16);
        m.run_traced(&sb_specs(100), 2, &mut trace);
        assert_eq!(trace.events().len(), 16);
        assert!(trace.dropped() > 0);
        let text = trace.render();
        assert!(text.contains("dropped"));
    }

    #[test]
    fn display_forms() {
        let e = TraceEvent {
            cycle: 3,
            thread: 1,
            kind: TraceKind::Load {
                cell: 0,
                value: 4,
                forwarded: true,
            },
        };
        assert!(e.to_string().contains("forwarded"));
        let e = TraceEvent {
            cycle: 1,
            thread: 0,
            kind: TraceKind::Fence,
        };
        assert!(e.to_string().contains("mfence"));
        let e = TraceEvent {
            cycle: 2,
            thread: 0,
            kind: TraceKind::Xchg {
                cell: 1,
                old: 0,
                new: 5,
            },
        };
        assert!(e.to_string().contains("locked"));
        let e = TraceEvent {
            cycle: 2,
            thread: 0,
            kind: TraceKind::Blocked { until: 9 },
        };
        assert!(e.to_string().contains("blocked"));
    }
}
