//! A tiny, fast, seedable PRNG for the simulator's hot loop.
//!
//! The simulator draws several random numbers per simulated cycle and runs
//! for up to hundreds of millions of cycles, so it uses an inlined
//! xorshift64* generator instead of `rand`'s ChaCha-based `StdRng` (roughly
//! an order of magnitude faster, and deterministic across platforms, which
//! experiment reproducibility requires). Quality is far beyond what
//! scheduling noise needs.

/// xorshift64* pseudo-random generator (Vigna 2016).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShiftStar {
    state: u64,
}

impl XorShiftStar {
    /// Creates a generator from a seed; a zero seed is remapped (xorshift
    /// state must be non-zero).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against the top 53 bits as a uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift range reduction (Lemire); bias is negligible
            // for scheduling noise.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Geometric-ish duration with the given mean: uniform in
    /// `[1, 2*mean]`, cheap and sufficient for scheduling noise.
    #[inline]
    pub fn duration(&mut self, mean: u64) -> u64 {
        if mean == 0 {
            0
        } else {
            1 + self.below(2 * mean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShiftStar::new(7);
        let mut b = XorShiftStar::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftStar::new(1);
        let mut b = XorShiftStar::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShiftStar::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShiftStar::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_mean_is_roughly_p() {
        let mut r = XorShiftStar::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = XorShiftStar::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn duration_bounds() {
        let mut r = XorShiftStar::new(9);
        for _ in 0..1_000 {
            let d = r.duration(100);
            assert!((1..=200).contains(&d));
        }
        assert_eq!(r.duration(0), 0);
    }
}
