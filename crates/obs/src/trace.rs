//! Hierarchical span tracer with Chrome `trace_event` export.
//!
//! A span is opened at a pipeline choke point ([`span`]) and closed when
//! its guard drops. While the tracer is disarmed (the default) a span
//! costs one relaxed atomic load; arming ([`start`]) makes every guard
//! record `{name, thread id, parent span, monotonic enter/exit}` into a
//! global sink, drained by [`finish`].
//!
//! Parent links come from a thread-local span stack, so nesting is
//! tracked per thread without locking on enter; thread ids are assigned
//! monotonically the first time a thread opens a span (stable within a
//! trace, unlike `std::thread::ThreadId`, which has no stable public
//! integer form).
//!
//! Exports: [`Trace::chrome_json`] emits Chrome `trace_event` "complete"
//! (`ph:"X"`) events loadable in `chrome://tracing` or Perfetto;
//! [`Trace::flame_summary`] renders a per-span-name table with total and
//! self time (total minus time attributed to child spans).
//!
//! A span whose guard drops after [`finish`] disarmed the tracer is
//! discarded rather than leaking into the next trace.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace-unique span id (assigned at enter, starting from 1).
    pub id: u64,
    /// Id of the span this one was nested inside on the same thread.
    pub parent: Option<u64>,
    /// Stage name (static: spans mark fixed pipeline choke points).
    pub name: &'static str,
    /// Tracer-assigned thread id (1-based, stable within a trace).
    pub tid: u64,
    /// Microseconds from [`start`] to span enter.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on its thread at enter (0 = top level).
    pub depth: u16,
}

struct TraceState {
    epoch: Option<Instant>,
    records: Vec<SpanRecord>,
}

fn state() -> &'static Mutex<TraceState> {
    static STATE: OnceLock<Mutex<TraceState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(TraceState {
            epoch: None,
            records: Vec::new(),
        })
    })
}

static ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct ThreadTrace {
    tid: Option<u64>,
    stack: Vec<u64>,
}

thread_local! {
    static THREAD: RefCell<ThreadTrace> = const {
        RefCell::new(ThreadTrace { tid: None, stack: Vec::new() })
    };
}

/// True while the tracer is recording spans.
pub fn armed() -> bool {
    !cfg!(feature = "off") && ARMED.load(Ordering::Acquire)
}

/// Arms the tracer: clears any previous records, sets the time epoch to
/// now, and makes subsequent [`span`] guards record on drop.
pub fn start() {
    if cfg!(feature = "off") {
        return;
    }
    if let Ok(mut st) = state().lock() {
        st.epoch = Some(Instant::now());
        st.records.clear();
    }
    NEXT_SPAN_ID.store(1, Ordering::Release);
    ARMED.store(true, Ordering::Release);
}

/// Disarms the tracer and drains the recorded spans, sorted by enter
/// time. Spans still open on other threads are discarded when they close.
pub fn finish() -> Trace {
    ARMED.store(false, Ordering::Release);
    let mut spans = match state().lock() {
        Ok(mut st) => {
            st.epoch = None;
            std::mem::take(&mut st.records)
        }
        Err(_) => Vec::new(),
    };
    spans.sort_by_key(|s| (s.start_us, s.id));
    Trace { spans }
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    tid: u64,
    depth: u16,
    start: Instant,
}

/// RAII guard returned by [`span`]; records the span when dropped.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

/// Opens a span named `name`. Inert (one atomic load) unless the tracer
/// is armed. Guards nest per thread; drop order gives the parent links.
pub fn span(name: &'static str) -> SpanGuard {
    if cfg!(feature = "off") || !ARMED.load(Ordering::Relaxed) {
        return SpanGuard { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let inner = THREAD
        .try_with(|t| {
            let mut t = t.borrow_mut();
            let tid = *t
                .tid
                .get_or_insert_with(|| NEXT_TID.fetch_add(1, Ordering::Relaxed));
            let parent = t.stack.last().copied();
            let depth = t.stack.len() as u16;
            t.stack.push(id);
            ActiveSpan {
                id,
                parent,
                name,
                tid,
                depth,
                start: Instant::now(),
            }
        })
        .ok();
    SpanGuard { inner }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let dur_us = active.start.elapsed().as_micros() as u64;
        let _ = THREAD.try_with(|t| {
            let mut t = t.borrow_mut();
            // Guards are strictly nested locals, so our id is on top.
            if t.stack.last() == Some(&active.id) {
                t.stack.pop();
            }
        });
        if !ARMED.load(Ordering::Acquire) {
            return; // trace finished while this span was open
        }
        if let Ok(mut st) = state().lock() {
            let Some(epoch) = st.epoch else { return };
            let start_us = active.start.saturating_duration_since(epoch).as_micros() as u64;
            st.records.push(SpanRecord {
                id: active.id,
                parent: active.parent,
                name: active.name,
                tid: active.tid,
                start_us,
                dur_us,
                depth: active.depth,
            });
        }
    }
}

/// A drained trace: every span recorded between [`start`] and [`finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Completed spans sorted by enter time.
    pub spans: Vec<SpanRecord>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Trace {
    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Chrome `trace_event` JSON ("complete" events, one per span).
    /// Schema-stable: fixed key order, `pid` always 1, times in
    /// microseconds relative to [`start`].
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_into(&mut out, s.name);
            out.push_str(&format!(
                "\",\"cat\":\"perple\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{},\"depth\":{}}}}}",
                s.start_us,
                s.dur_us,
                s.tid,
                s.id,
                s.parent.map_or_else(|| "null".to_owned(), |p| p.to_string()),
                s.depth,
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Per-name flame table: call count, total time, and self time (total
    /// minus time spent in child spans).
    pub fn flame_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut child_us: HashMap<u64, u64> = HashMap::new();
        for s in &self.spans {
            if let Some(p) = s.parent {
                *child_us.entry(p).or_insert(0) += s.dur_us;
            }
        }
        let mut rows: HashMap<&'static str, (u64, u64, u64)> = HashMap::new();
        for s in &self.spans {
            let self_us = s
                .dur_us
                .saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
            let row = rows.entry(s.name).or_insert((0, 0, 0));
            row.0 += 1;
            row.1 += s.dur_us;
            row.2 += self_us;
        }
        let mut sorted: Vec<_> = rows.into_iter().collect();
        sorted.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>12} {:>12}",
            "span", "calls", "total(ms)", "self(ms)"
        );
        for (name, (calls, total, selft)) in sorted {
            let _ = writeln!(
                out,
                "{:<16} {:>7} {:>12.3} {:>12.3}",
                name,
                calls,
                total as f64 / 1000.0,
                selft as f64 / 1000.0
            );
        }
        out
    }
}

// Recording assertions only hold when the subsystem is compiled in.
#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    /// The tracer is global state; recording tests serialize behind this.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_spans_record_nothing() {
        let _g = gate();
        let _ = finish();
        {
            let _s = span("ghost");
        }
        start();
        let t = finish();
        assert!(t.is_empty());
    }

    #[test]
    fn nesting_produces_parent_links_and_depths() {
        let _g = gate();
        start();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        let t = finish();
        assert_eq!(t.spans.len(), 2);
        let outer = t.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = t.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_us >= outer.start_us);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let _g = gate();
        start();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _a = span("worker");
            });
            s.spawn(|| {
                let _b = span("worker");
            });
        });
        let t = finish();
        assert_eq!(t.spans.len(), 2);
        assert_ne!(t.spans[0].tid, t.spans[1].tid);
    }

    #[test]
    fn chrome_json_has_stable_shape() {
        let _g = gate();
        start();
        {
            let _s = span("convert");
        }
        let t = finish();
        let json = t.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"convert\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn flame_summary_aggregates_by_name() {
        let _g = gate();
        start();
        for _ in 0..3 {
            let _s = span("simulate");
        }
        let t = finish();
        let flame = t.flame_summary();
        assert!(flame.contains("simulate"));
        assert!(flame.contains("calls"));
        let row = flame.lines().find(|l| l.starts_with("simulate")).unwrap();
        assert!(row.contains('3'), "3 calls aggregated: {row}");
    }

    #[test]
    fn restarting_clears_previous_records() {
        let _g = gate();
        start();
        {
            let _s = span("old");
        }
        start();
        {
            let _s = span("new");
        }
        let t = finish();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "new");
        assert_eq!(t.spans[0].id, 1, "span ids restart per trace");
    }

    #[test]
    fn escaping_handles_quotes() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\n");
        assert_eq!(s, "a\\\"b\\\\c\\u000a");
    }
}
