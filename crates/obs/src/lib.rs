//! Zero-dependency observability for the PerpLE pipeline.
//!
//! Two independent subsystems, both safe to leave compiled in:
//!
//! * [`metrics`] — a process-wide registry of **event counters** and
//!   **fixed-bucket histograms**. The hot path is lock-free: every thread
//!   owns a private shard of atomic cells and increments with relaxed
//!   `fetch_add`; a scrape ([`metrics::snapshot`]) walks the shard list
//!   (a mutex taken only on thread registration and scrape) and merges by
//!   elementwise addition. The metric set is a closed enum, so shards are
//!   fixed-size arrays and registration never allocates per event.
//! * [`trace`] — a hierarchical **span tracer**. Spans record monotonic
//!   enter/exit timestamps, a per-thread id, and a parent link (maintained
//!   via a thread-local span stack). Disarmed tracing costs one relaxed
//!   atomic load per span; an armed trace can be exported as Chrome
//!   `trace_event` JSON (load it in `chrome://tracing` or Perfetto) or
//!   rendered as a text flame summary.
//!
//! Neither subsystem feeds back into the pipeline: instrumented code reads
//! nothing from the registry and takes no branches on recorded data, which
//! is what makes the obs-on/obs-off determinism guarantee (bit-identical
//! run digests) hold by construction.
//!
//! The `off` cargo feature compiles every entry point down to a no-op for
//! builds that must not carry the subsystem at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Hist, Metric, MetricsSnapshot};
pub use trace::{span, SpanGuard, SpanRecord, Trace};
