//! Process-wide event counters and fixed-bucket histograms.
//!
//! The registry is **sharded per thread**: the first event a thread
//! records allocates it a private [`Shard`] of atomic cells, registered
//! once under a mutex; every subsequent event is a single relaxed
//! `fetch_add` on thread-local memory with no shared-cache contention.
//! [`snapshot`] merges all shards by elementwise addition — the merge is
//! associative and commutative, so the result is independent of how
//! events were distributed across threads (property-tested in the
//! workspace test suite).
//!
//! Counters are a closed set ([`Metric`]) and histograms use fixed
//! power-of-two buckets ([`bucket_of`]), so shards are fixed-size arrays:
//! no per-event allocation, no string hashing on the hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The closed set of event counters fed by pipeline instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Store-buffer entries drained to shared memory (`sim::machine`).
    SimStoreBufferFlushes,
    /// Long preemptions taken by the scheduler (`sim::machine`).
    SimPreemptions,
    /// Micro-preemptions (short descheduling bursts) taken.
    SimMicroPreemptions,
    /// Single-cycle issue stalls injected by the scheduler.
    SimStalls,
    /// Scheduler cycles executed (one per machine loop step).
    SimSchedulerCycles,
    /// Faults actually injected by an armed fault plan.
    SimFaultInjections,
    /// Completed machine runs.
    SimRuns,
    /// Frames the counters actually evaluated.
    CountFramesExamined,
    /// Frames skipped by `frame_at` seeking (parallel shards jump straight
    /// to their range start instead of iterating the odometer).
    CountFramesSkippedSeek,
    /// Heuristic partner-derivations that matched an outcome.
    CountPartnerHits,
    /// Heuristic partner-derivations that matched nothing.
    CountPartnerMisses,
    /// Counter invocations truncated by an expired budget.
    CountBudgetExpiries,
    /// Reads-from partner edges walked by the rf counter (one per atom per
    /// admitted iteration: each compiled constraint scans its feature once).
    CountRfEdgesWalked,
    /// Closure sweep steps performed by the rf counter (positions visited
    /// by the per-component interval sweeps).
    CountRfClosureSteps,
    /// Rf counter invocations that fell back to the exhaustive scan because
    /// an outcome's constraint shape was outside the polynomial fragment.
    CountRfFallbacks,
    /// Attempt retries performed by the resilient executor.
    ExecRetries,
    /// Suite items quarantined after exhausting retries.
    ExecQuarantines,
    /// Audit rows degraded because a stage budget expired.
    ExecBudgetExpiries,
    /// Write/sync boundaries crossed by the campaign-store IO shim (one
    /// per file write, rename, append, sync, truncate, or dir creation).
    StoreIoBoundaries,
    /// Outcome frames appended to a campaign write-ahead journal.
    StoreJournalAppends,
    /// fsync (`sync_data`) calls issued by the campaign-store IO shim.
    StoreFsyncs,
    /// Torn (incomplete) trailing journal frames dropped during replay.
    StoreTornFrames,
    /// Items recovered from a write-ahead journal by `campaign resume`
    /// (journaled outcomes that skipped re-execution entirely).
    StoreRecoveredItems,
    /// Bounded-backoff retries of transient campaign-store IO errors.
    StoreTransientRetries,
    /// Cache writes dropped after exhausting retries: the item degraded
    /// to uncached execution instead of failing the campaign.
    StoreCacheWriteDrops,
    /// Corrupt cache entries moved to quarantine by `campaign fsck`.
    StoreCacheQuarantines,
    /// Campaign specs accepted onto the serve job queue.
    ServeSubmissions,
    /// Submissions rejected with backpressure (queue full or per-client
    /// quota exceeded).
    ServeRejections,
    /// Jobs that ran to completion on the serve worker pool (including
    /// jobs whose campaign failed — the job itself finished).
    ServeJobsDone,
    /// Item records streamed to serve clients as chunked JSONL lines.
    ServeItemsStreamed,
}

/// Number of distinct [`Metric`] variants (shard array size).
pub const METRIC_COUNT: usize = 30;

impl Metric {
    /// Every metric, in stable declaration order.
    pub const ALL: [Metric; METRIC_COUNT] = [
        Metric::SimStoreBufferFlushes,
        Metric::SimPreemptions,
        Metric::SimMicroPreemptions,
        Metric::SimStalls,
        Metric::SimSchedulerCycles,
        Metric::SimFaultInjections,
        Metric::SimRuns,
        Metric::CountFramesExamined,
        Metric::CountFramesSkippedSeek,
        Metric::CountPartnerHits,
        Metric::CountPartnerMisses,
        Metric::CountBudgetExpiries,
        Metric::CountRfEdgesWalked,
        Metric::CountRfClosureSteps,
        Metric::CountRfFallbacks,
        Metric::ExecRetries,
        Metric::ExecQuarantines,
        Metric::ExecBudgetExpiries,
        Metric::StoreIoBoundaries,
        Metric::StoreJournalAppends,
        Metric::StoreFsyncs,
        Metric::StoreTornFrames,
        Metric::StoreRecoveredItems,
        Metric::StoreTransientRetries,
        Metric::StoreCacheWriteDrops,
        Metric::StoreCacheQuarantines,
        Metric::ServeSubmissions,
        Metric::ServeRejections,
        Metric::ServeJobsDone,
        Metric::ServeItemsStreamed,
    ];

    /// Stable snake_case name (used in manifests and `campaign compare`).
    pub fn name(self) -> &'static str {
        match self {
            Metric::SimStoreBufferFlushes => "sim_store_buffer_flushes",
            Metric::SimPreemptions => "sim_preemptions",
            Metric::SimMicroPreemptions => "sim_micro_preemptions",
            Metric::SimStalls => "sim_stalls",
            Metric::SimSchedulerCycles => "sim_scheduler_cycles",
            Metric::SimFaultInjections => "sim_fault_injections",
            Metric::SimRuns => "sim_runs",
            Metric::CountFramesExamined => "count_frames_examined",
            Metric::CountFramesSkippedSeek => "count_frames_skipped_seek",
            Metric::CountPartnerHits => "count_partner_hits",
            Metric::CountPartnerMisses => "count_partner_misses",
            Metric::CountBudgetExpiries => "count_budget_expiries",
            Metric::CountRfEdgesWalked => "count_rf_edges_walked",
            Metric::CountRfClosureSteps => "count_rf_closure_steps",
            Metric::CountRfFallbacks => "count_rf_fallbacks",
            Metric::ExecRetries => "exec_retries",
            Metric::ExecQuarantines => "exec_quarantines",
            Metric::ExecBudgetExpiries => "exec_budget_expiries",
            Metric::StoreIoBoundaries => "store_io_boundaries",
            Metric::StoreJournalAppends => "store_journal_appends",
            Metric::StoreFsyncs => "store_fsyncs",
            Metric::StoreTornFrames => "store_torn_frames",
            Metric::StoreRecoveredItems => "store_recovered_items",
            Metric::StoreTransientRetries => "store_transient_retries",
            Metric::StoreCacheWriteDrops => "store_cache_write_drops",
            Metric::StoreCacheQuarantines => "store_cache_quarantines",
            Metric::ServeSubmissions => "serve_submissions",
            Metric::ServeRejections => "serve_rejections",
            Metric::ServeJobsDone => "serve_jobs_done",
            Metric::ServeItemsStreamed => "serve_items_streamed",
        }
    }

    fn index(self) -> usize {
        Metric::ALL.iter().position(|&m| m == self).unwrap_or(0)
    }
}

/// The closed set of histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Machine cycles per completed run.
    SimRunCycles,
    /// Frames examined per counter invocation.
    CountFramesPerCall,
    /// Wall microseconds per resilient-executor attempt.
    ExecAttemptMicros,
    /// Wall microseconds between consecutive item records of one serve
    /// job (the first record measures from job start) — the per-item
    /// latency a streaming client observes.
    ServeItemMicros,
    /// Wall microseconds per serve job, submission claim to completion.
    ServeJobMicros,
}

/// Number of distinct [`Hist`] variants.
pub const HIST_COUNT: usize = 5;

/// Buckets per histogram: bucket 0 holds zero, bucket `i` holds values
/// with bit-length `i` (`[2^(i-1), 2^i)`), the last bucket saturates.
pub const HIST_BUCKETS: usize = 32;

impl Hist {
    /// Every histogram, in stable declaration order.
    pub const ALL: [Hist; HIST_COUNT] = [
        Hist::SimRunCycles,
        Hist::CountFramesPerCall,
        Hist::ExecAttemptMicros,
        Hist::ServeItemMicros,
        Hist::ServeJobMicros,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SimRunCycles => "sim_run_cycles",
            Hist::CountFramesPerCall => "count_frames_per_call",
            Hist::ExecAttemptMicros => "exec_attempt_micros",
            Hist::ServeItemMicros => "serve_item_micros",
            Hist::ServeJobMicros => "serve_job_micros",
        }
    }

    fn index(self) -> usize {
        Hist::ALL.iter().position(|&h| h == self).unwrap_or(0)
    }
}

/// Maps a value to its power-of-two bucket: 0 → 0, otherwise the value's
/// bit length, saturating at `HIST_BUCKETS - 1`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (`None` past the last bucket).
pub fn bucket_lower_bound(i: usize) -> Option<u64> {
    match i {
        0 => Some(0),
        1 => Some(1),
        _ if i < HIST_BUCKETS => Some(1u64 << (i - 1)),
        _ => None,
    }
}

/// One thread's private slice of the registry.
struct Shard {
    counters: [AtomicU64; METRIC_COUNT],
    hists: [[AtomicU64; HIST_BUCKETS]; HIST_COUNT],
}

impl Shard {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Shard> = {
        let shard = Arc::new(Shard::new());
        if let Ok(mut shards) = registry().lock() {
            shards.push(Arc::clone(&shard));
        }
        shard
    };
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Runtime on/off switch (default on). Disabling stops new events from
/// being recorded; already-recorded values stay visible to [`snapshot`].
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Release);
}

/// True if the registry is currently recording events.
pub fn enabled() -> bool {
    !cfg!(feature = "off") && ENABLED.load(Ordering::Acquire)
}

/// Adds `delta` to a counter. Lock-free: one relaxed `fetch_add` on the
/// calling thread's shard. A no-op when disabled or compiled `off`.
pub fn add(metric: Metric, delta: u64) {
    if cfg!(feature = "off") || delta == 0 || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    // `try_with` so late events during thread teardown degrade to no-ops
    // instead of panicking in a destructor.
    let _ = LOCAL.try_with(|shard| {
        shard.counters[metric.index()].fetch_add(delta, Ordering::Relaxed);
    });
}

/// Records one observation into a histogram's power-of-two bucket.
pub fn observe(hist: Hist, value: u64) {
    if cfg!(feature = "off") || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let _ = LOCAL.try_with(|shard| {
        shard.hists[hist.index()][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    });
}

/// A merged view of every shard at one moment: counters plus histogram
/// buckets, both in stable declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(metric name, merged count)` for every metric (zeros included).
    pub counters: Vec<(&'static str, u64)>,
    /// `(histogram name, merged buckets)` for every histogram.
    pub hists: Vec<(&'static str, Vec<u64>)>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot (the identity for [`MetricsSnapshot::delta_from`]).
    pub fn zero() -> Self {
        Self {
            counters: Metric::ALL.iter().map(|m| (m.name(), 0)).collect(),
            hists: Hist::ALL
                .iter()
                .map(|h| (h.name(), vec![0; HIST_BUCKETS]))
                .collect(),
        }
    }

    /// Looks up a counter by name (0 if unknown).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Counters since `base` (saturating): the registry is cumulative per
    /// process, so a run scoped `after.delta_from(&before)` isolates its
    /// own events.
    pub fn delta_from(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|&(name, v)| (name, v.saturating_sub(base.get(name))))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(name, buckets)| {
                    let base_buckets = base
                        .hists
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, b)| b.as_slice())
                        .unwrap_or(&[]);
                    let merged = buckets
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| v.saturating_sub(base_buckets.get(i).copied().unwrap_or(0)))
                        .collect();
                    (*name, merged)
                })
                .collect(),
        }
    }

    /// Total observations recorded into a histogram (0 if unknown).
    pub fn hist_total(&self, name: &str) -> u64 {
        self.hists
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, b)| b.iter().sum())
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of a histogram from its
    /// power-of-two buckets: the lower bound of the bucket the ranked
    /// observation falls in (a deterministic underestimate, never off by
    /// more than one bucket width). `None` for unknown or empty
    /// histograms.
    pub fn quantile(&self, name: &str, q: f64) -> Option<u64> {
        let (_, buckets) = self.hists.iter().find(|(n, _)| *n == name)?;
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_lower_bound(i);
            }
        }
        None
    }

    /// The snapshot as a stable JSON document:
    /// `{"counters":{...},"hists":{...}}` with every counter and bucket
    /// present (zeros included) in declaration order. Rendered by hand so
    /// this crate stays dependency-free; names are static snake_case
    /// identifiers, so no escaping is needed.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"counters\":{");
        for (i, &(name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{v}");
        }
        s.push_str("},\"hists\":{");
        for (i, (name, buckets)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":[");
            for (b, &c) in buckets.iter().enumerate() {
                if b > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push(']');
        }
        s.push_str("}}");
        s
    }

    /// Human-readable listing of non-zero counters and histograms.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for &(name, v) in &self.counters {
            if v > 0 {
                let _ = writeln!(s, "{name:<26} {v}");
            }
        }
        for (name, buckets) in &self.hists {
            let total: u64 = buckets.iter().sum();
            if total == 0 {
                continue;
            }
            let _ = write!(s, "{name:<26} n={total} [");
            let mut first = true;
            for (i, &c) in buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    let _ = write!(s, " ");
                }
                first = false;
                let lo = bucket_lower_bound(i).unwrap_or(0);
                let _ = write!(s, "{lo}+:{c}");
            }
            let _ = writeln!(s, "]");
        }
        s
    }
}

/// Merges every registered shard into one [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::zero();
    if cfg!(feature = "off") {
        return snap;
    }
    let shards = match registry().lock() {
        Ok(s) => s,
        Err(_) => return snap,
    };
    for shard in shards.iter() {
        for (slot, cell) in snap.counters.iter_mut().zip(shard.counters.iter()) {
            slot.1 += cell.load(Ordering::Relaxed);
        }
        for (slot, cells) in snap.hists.iter_mut().zip(shard.hists.iter()) {
            for (b, cell) in slot.1.iter_mut().zip(cells.iter()) {
                *b += cell.load(Ordering::Relaxed);
            }
        }
    }
    snap
}

// Recording assertions only hold when the subsystem is compiled in.
#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    /// Tests that record events or toggle [`set_enabled`] share the global
    /// registry, so they serialize behind this gate to stay order-free.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn metric_names_are_unique_and_stable() {
        let mut names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRIC_COUNT);
        assert_eq!(
            Metric::SimStoreBufferFlushes.name(),
            "sim_store_buffer_flushes"
        );
        assert_eq!(Metric::CountFramesExamined.name(), "count_frames_examined");
    }

    #[test]
    fn bucket_of_is_monotone_and_bounded() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..64 {
            let b = bucket_of(1u64 << shift);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn bucket_lower_bounds_partition_the_range() {
        assert_eq!(bucket_lower_bound(0), Some(0));
        assert_eq!(bucket_lower_bound(1), Some(1));
        assert_eq!(bucket_lower_bound(2), Some(2));
        assert_eq!(bucket_lower_bound(3), Some(4));
        assert_eq!(bucket_lower_bound(HIST_BUCKETS), None);
        for i in 1..HIST_BUCKETS {
            let lo = bucket_lower_bound(i).unwrap();
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i} maps back");
        }
    }

    #[test]
    fn add_is_visible_in_snapshot_and_delta_isolates() {
        let _g = gate();
        let before = snapshot();
        add(Metric::CountPartnerHits, 3);
        add(Metric::CountPartnerHits, 4);
        let after = snapshot();
        let delta = after.delta_from(&before);
        // Other tests in this binary may add concurrently, so assert >=.
        assert!(delta.get("count_partner_hits") >= 7);
        assert_eq!(delta.get("no_such_metric"), 0);
    }

    #[test]
    fn observe_lands_in_the_right_bucket() {
        let _g = gate();
        let before = snapshot();
        observe(Hist::SimRunCycles, 1000); // bit length 10
        let delta = snapshot().delta_from(&before);
        let (_, buckets) = delta
            .hists
            .iter()
            .find(|(n, _)| *n == "sim_run_cycles")
            .unwrap();
        assert!(buckets[bucket_of(1000)] >= 1);
        assert!(delta.hist_total("sim_run_cycles") >= 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = gate();
        let before = snapshot();
        set_enabled(false);
        add(Metric::ExecQuarantines, 50_000);
        observe(Hist::ExecAttemptMicros, 1);
        set_enabled(true);
        let delta = snapshot().delta_from(&before);
        assert_eq!(delta.get("exec_quarantines"), 0);
        assert_eq!(delta.hist_total("exec_attempt_micros"), 0);
    }

    #[test]
    fn shards_merge_across_threads() {
        let _g = gate();
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        add(Metric::SimFaultInjections, 1);
                    }
                });
            }
        });
        let delta = snapshot().delta_from(&before);
        assert!(delta.get("sim_fault_injections") >= 400);
    }

    #[test]
    fn quantile_estimates_from_buckets() {
        let mut snap = MetricsSnapshot::zero();
        // 100 observations: 50 in bucket 3 ([4,8)), 49 in bucket 5
        // ([16,32)), 1 in bucket 10 ([512,1024)).
        let hist = snap
            .hists
            .iter_mut()
            .find(|(n, _)| *n == "serve_item_micros")
            .map(|(_, b)| b)
            .unwrap();
        hist[3] = 50;
        hist[5] = 49;
        hist[10] = 1;
        assert_eq!(snap.quantile("serve_item_micros", 0.5), Some(4));
        assert_eq!(snap.quantile("serve_item_micros", 0.99), Some(16));
        assert_eq!(snap.quantile("serve_item_micros", 1.0), Some(512));
        assert_eq!(snap.quantile("serve_item_micros", 0.0), Some(4));
        assert_eq!(snap.quantile("serve_job_micros", 0.5), None, "empty");
        assert_eq!(snap.quantile("no_such_hist", 0.5), None);
    }

    #[test]
    fn render_json_is_complete_and_stable() {
        let snap = MetricsSnapshot::zero();
        let a = snap.render_json();
        let b = snap.render_json();
        assert_eq!(a, b, "byte-stable across calls");
        assert!(a.starts_with("{\"counters\":{"));
        for m in Metric::ALL {
            assert!(a.contains(&format!("\"{}\":", m.name())), "{}", m.name());
        }
        for h in Hist::ALL {
            assert!(a.contains(&format!("\"{}\":[", h.name())), "{}", h.name());
        }
        // Every histogram renders all of its buckets: 1 leading zero after
        // each '[' plus HIST_BUCKETS - 1 comma-separated zeros.
        assert_eq!(a.matches("[0").count(), HIST_COUNT);
        assert_eq!(a.matches(",0").count(), HIST_COUNT * (HIST_BUCKETS - 1));
    }

    #[test]
    fn render_text_lists_nonzero_counters() {
        let _g = gate();
        add(Metric::SimRuns, 1);
        let text = snapshot().render_text();
        assert!(text.contains("sim_runs"));
    }
}
