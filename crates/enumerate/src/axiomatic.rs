//! Axiomatic x86-TSO: the "herding cats" formulation, as a second,
//! independently-derived TSO oracle.
//!
//! A complete register outcome is TSO-allowed iff there exists a write
//! serialization such that:
//!
//! 1. **SC-per-location** (coherence): `po-loc ∪ rf ∪ ws ∪ fr` is acyclic;
//! 2. **atomicity**: no store intervenes (in ws) between a locked RMW's
//!    read-from store and its own store;
//! 3. **global happens-before**: `ppo ∪ fence ∪ rfe ∪ ws ∪ fr` is acyclic,
//!    where `ppo` is program order minus W→R pairs (the store-buffer
//!    relaxation), `fence` restores order across `MFENCE`/locked
//!    instructions, and `rfe` is external read-from only (store forwarding
//!    is not globally ordered).
//!
//! Locked exchanges contribute *two* events (read part before write part),
//! which is what lets their internal ordering and atomicity be expressed.
//!
//! The crate's tests check exact agreement with the operational TSO
//! enumerator over every possible outcome of the whole suite — two
//! formulations of x86-TSO validating each other.

use perple_model::{Instr, LitmusTest, Outcome, ThreadId};

/// Errors from axiomatic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiomError {
    /// The outcome leaves a loaded register unvalued.
    IncompleteOutcome,
    /// A register is loaded more than once (per-load rf is ambiguous).
    ReloadedRegister,
    /// A loaded value is produced by no store or several stores.
    UnattributableValue {
        /// The problematic value.
        value: u32,
    },
}

impl std::fmt::Display for AxiomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiomError::IncompleteOutcome => write!(f, "outcome leaves a register unvalued"),
            AxiomError::ReloadedRegister => {
                write!(f, "a register is loaded more than once")
            }
            AxiomError::UnattributableValue { value } => {
                write!(f, "value {value} has no unique writer")
            }
        }
    }
}

impl std::error::Error for AxiomError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    thread: usize,
    /// Program-order rank within the thread (xchg read < xchg write).
    rank: usize,
    loc: usize,
    kind: Kind,
    /// Stored value (writes) or observed value (reads).
    value: u32,
    /// Both parts of a locked instruction share its instruction index.
    locked_instr: Option<usize>,
}

/// True if the outcome is reachable under axiomatic x86-TSO.
///
/// # Errors
///
/// Returns [`AxiomError`] when the outcome/test shape prevents analysis
/// (incomplete valuation, reloaded registers, ambiguous writers).
pub fn tso_allows(test: &LitmusTest, outcome: &Outcome) -> Result<bool, AxiomError> {
    let events = build_events(test, outcome)?;
    let nevents = events.len();

    // rf: for each read, the writer event index (None = initial value).
    let mut rf: Vec<Option<usize>> = Vec::new(); // indexed like `reads`
    let reads: Vec<usize> = (0..nevents)
        .filter(|&i| events[i].kind == Kind::Read)
        .collect();
    let writes: Vec<usize> = (0..nevents)
        .filter(|&i| events[i].kind == Kind::Write)
        .collect();
    for &r in &reads {
        let ev = &events[r];
        if ev.value == test.init_values()[ev.loc] {
            rf.push(None);
            continue;
        }
        let mut candidates = writes
            .iter()
            .filter(|&&w| events[w].loc == ev.loc && events[w].value == ev.value);
        let first = candidates
            .next()
            .ok_or(AxiomError::UnattributableValue { value: ev.value })?;
        if candidates.next().is_some() {
            return Err(AxiomError::UnattributableValue { value: ev.value });
        }
        rf.push(Some(*first));
    }

    // Enumerate per-location write serializations respecting program order.
    let nlocs = test.location_count();
    let mut per_loc_orders: Vec<Vec<Vec<usize>>> = Vec::new();
    for l in 0..nlocs {
        let ws: Vec<usize> = writes
            .iter()
            .copied()
            .filter(|&w| events[w].loc == l)
            .collect();
        per_loc_orders.push(po_respecting_permutations(&events, &ws));
    }

    let mut choice = vec![0usize; nlocs];
    loop {
        let ws_orders: Vec<&[usize]> = per_loc_orders
            .iter()
            .zip(&choice)
            .map(|(orders, &c)| orders[c].as_slice())
            .collect();
        if execution_valid(test, &events, &reads, &rf, &ws_orders) {
            return Ok(true);
        }
        // Odometer.
        let mut pos = nlocs;
        loop {
            if pos == 0 {
                return Ok(false);
            }
            pos -= 1;
            choice[pos] += 1;
            if choice[pos] < per_loc_orders[pos].len() {
                break;
            }
            choice[pos] = 0;
        }
    }
}

fn build_events(test: &LitmusTest, outcome: &Outcome) -> Result<Vec<Event>, AxiomError> {
    let mut events = Vec::new();
    let slots = test.load_slots();
    for slot in &slots {
        if slots
            .iter()
            .any(|s| s.thread == slot.thread && s.reg == slot.reg && s.slot != slot.slot)
        {
            return Err(AxiomError::ReloadedRegister);
        }
    }
    for (t, instrs) in test.threads().iter().enumerate() {
        let mut rank = 0usize;
        for (i, instr) in instrs.iter().enumerate() {
            match *instr {
                Instr::Store { loc, value } => {
                    events.push(Event {
                        thread: t,
                        rank,
                        loc: loc.index(),
                        kind: Kind::Write,
                        value,
                        locked_instr: None,
                    });
                    rank += 1;
                }
                Instr::Load { reg, loc } => {
                    let v = outcome
                        .get(ThreadId(t as u8), reg)
                        .ok_or(AxiomError::IncompleteOutcome)?;
                    events.push(Event {
                        thread: t,
                        rank,
                        loc: loc.index(),
                        kind: Kind::Read,
                        value: v,
                        locked_instr: None,
                    });
                    rank += 1;
                }
                Instr::Mfence => {
                    // Fences are not events; their ordering is added below
                    // via instruction positions. Represent as a rank gap.
                    rank += 1;
                }
                Instr::Xchg { reg, loc, value } => {
                    let v = outcome
                        .get(ThreadId(t as u8), reg)
                        .ok_or(AxiomError::IncompleteOutcome)?;
                    events.push(Event {
                        thread: t,
                        rank,
                        loc: loc.index(),
                        kind: Kind::Read,
                        value: v,
                        locked_instr: Some(i),
                    });
                    rank += 1;
                    events.push(Event {
                        thread: t,
                        rank,
                        loc: loc.index(),
                        kind: Kind::Write,
                        value,
                        locked_instr: Some(i),
                    });
                    rank += 1;
                }
            }
        }
    }
    Ok(events)
}

/// Permutations of `ws` (event indices) preserving same-thread rank order.
fn po_respecting_permutations(events: &[Event], ws: &[usize]) -> Vec<Vec<usize>> {
    fn rec(
        events: &[Event],
        remaining: &mut Vec<usize>,
        acc: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if remaining.is_empty() {
            out.push(acc.clone());
            return;
        }
        for i in 0..remaining.len() {
            let cand = remaining[i];
            let blocked = remaining.iter().any(|&r| {
                events[r].thread == events[cand].thread && events[r].rank < events[cand].rank
            });
            if blocked {
                continue;
            }
            let cand = remaining.remove(i);
            acc.push(cand);
            rec(events, remaining, acc, out);
            acc.pop();
            remaining.insert(i, cand);
        }
    }
    let mut out = Vec::new();
    rec(events, &mut ws.to_vec(), &mut Vec::new(), &mut out);
    out
}

fn execution_valid(
    test: &LitmusTest,
    events: &[Event],
    reads: &[usize],
    rf: &[Option<usize>],
    ws_orders: &[&[usize]],
) -> bool {
    let n = events.len();
    let ws_pos = |loc: usize, ev: Option<usize>| -> usize {
        match ev {
            None => 0,
            Some(e) => {
                ws_orders[loc]
                    .iter()
                    .position(|&w| w == e)
                    .expect("write serialized")
                    + 1
            }
        }
    };

    // fr: read r -> every write ws-after its writer (excluding a locked
    // RMW's own write, which is the same instruction).
    let mut fr: Vec<(usize, usize)> = Vec::new();
    for (ri, &r) in reads.iter().enumerate() {
        let loc = events[r].loc;
        let wpos = ws_pos(loc, rf[ri]);
        for (i, &w) in ws_orders[loc].iter().enumerate() {
            let same_instr = events[r].locked_instr.is_some()
                && events[r].locked_instr == events[w].locked_instr
                && events[r].thread == events[w].thread;
            if i + 1 > wpos && !same_instr {
                fr.push((r, w));
            }
        }
    }

    // Atomicity: nothing ws-between a locked read's writer and its own
    // write.
    for (ri, &r) in reads.iter().enumerate() {
        let Some(instr) = events[r].locked_instr else {
            continue;
        };
        let loc = events[r].loc;
        let own_write = ws_orders[loc]
            .iter()
            .find(|&&w| {
                events[w].locked_instr == Some(instr) && events[w].thread == events[r].thread
            })
            .copied()
            .expect("locked write serialized");
        let read_pos = ws_pos(loc, rf[ri]);
        let write_pos = ws_pos(loc, Some(own_write));
        if write_pos != read_pos + 1 {
            return false;
        }
    }

    // Edge sets.
    let mut uniproc: Vec<(usize, usize)> = Vec::new();
    let mut ghb: Vec<(usize, usize)> = Vec::new();

    // po-loc and ppo (+ fence order).
    for a in 0..n {
        for b in 0..n {
            if a == b || events[a].thread != events[b].thread || events[a].rank >= events[b].rank {
                continue;
            }
            if events[a].loc == events[b].loc {
                uniproc.push((a, b));
            }
            let w_r = events[a].kind == Kind::Write && events[b].kind == Kind::Read;
            let fenced = fence_between(test, events, a, b)
                || events[a].locked_instr.is_some()
                || events[b].locked_instr.is_some();
            if !w_r || fenced {
                ghb.push((a, b));
            }
        }
    }

    // rf / rfe, ws, fr.
    for (ri, &r) in reads.iter().enumerate() {
        if let Some(w) = rf[ri] {
            uniproc.push((w, r));
            if events[w].thread != events[r].thread {
                ghb.push((w, r));
            }
        }
    }
    for order in ws_orders {
        for pair in order.windows(2) {
            uniproc.push((pair[0], pair[1]));
            ghb.push((pair[0], pair[1]));
        }
    }
    for &(r, w) in &fr {
        uniproc.push((r, w));
        ghb.push((r, w));
    }

    acyclic(n, &uniproc) && acyclic(n, &ghb)
}

/// True if an `MFENCE` instruction sits between the two events in program
/// order.
fn fence_between(test: &LitmusTest, events: &[Event], a: usize, b: usize) -> bool {
    let t = events[a].thread;
    // Ranks count fence slots too (see build_events), so scan instruction
    // ranks of the thread for an Mfence with rank between a and b.
    let mut rank = 0usize;
    for instr in test.threads()[t].iter() {
        match instr {
            Instr::Mfence => {
                if rank > events[a].rank && rank < events[b].rank {
                    return true;
                }
                rank += 1;
            }
            Instr::Xchg { .. } => rank += 2,
            _ => rank += 1,
        }
    }
    false
}

fn acyclic(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        White,
        Gray,
        Black,
    }
    let mut color = vec![C::White; n];
    for start in 0..n {
        if color[start] != C::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = C::Gray;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let u = adj[v][*next];
                *next += 1;
                match color[u] {
                    C::Gray => return false,
                    C::White => {
                        color[u] = C::Gray;
                        stack.push((u, 0));
                    }
                    C::Black => {}
                }
            } else {
                color[v] = C::Black;
                stack.pop();
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate, MemoryModel};
    use perple_model::suite;

    fn agreement_on(test: &LitmusTest) {
        let reachable = enumerate(test, MemoryModel::Tso).register_outcomes();
        for outcome in test.possible_outcomes() {
            match tso_allows(test, &outcome) {
                Ok(allowed) => {
                    assert_eq!(
                        allowed,
                        reachable.contains(&outcome),
                        "{}: axiomatic/operational TSO disagree on {outcome}",
                        test.name()
                    );
                }
                Err(AxiomError::UnattributableValue { .. }) => {
                    assert!(
                        !reachable.contains(&outcome),
                        "{}: unattributable outcome reached",
                        test.name()
                    );
                }
                Err(e) => panic!("{}: unexpected {e}", test.name()),
            }
        }
    }

    #[test]
    fn axiomatic_agrees_with_operational_on_the_whole_suite() {
        for test in suite::convertible() {
            agreement_on(&test);
        }
    }

    #[test]
    fn axiomatic_agrees_on_the_generated_family() {
        for test in perple_model::generate::generate_family(4) {
            if test.load_slots().iter().any(|s| {
                test.load_slots()
                    .iter()
                    .any(|o| o.thread == s.thread && o.reg == s.reg && o.slot != s.slot)
            }) {
                continue; // reloaded registers: axiomatic oracle abstains
            }
            agreement_on(&test);
        }
    }

    #[test]
    fn sb_weak_outcome_is_axiomatically_allowed() {
        let sb = suite::sb();
        let target = sb.target_outcome().unwrap();
        assert!(tso_allows(&sb, &target).unwrap());
    }

    #[test]
    fn fenced_sb_weak_outcome_is_axiomatically_forbidden() {
        let amd5 = suite::amd5();
        let target = amd5.target_outcome().unwrap();
        assert!(!tso_allows(&amd5, &target).unwrap());
    }

    #[test]
    fn locked_sb_weak_outcome_is_axiomatically_forbidden() {
        // amd10: the xchg's implicit lock orders W->R.
        let amd10 = suite::amd10();
        for o in amd10.outcomes_matching_condition() {
            assert!(!tso_allows(&amd10, &o).unwrap(), "{o}");
        }
    }

    #[test]
    fn incomplete_outcomes_error() {
        let sb = suite::sb();
        let empty = perple_model::Outcome::new();
        assert_eq!(
            tso_allows(&sb, &empty).unwrap_err(),
            AxiomError::IncompleteOutcome
        );
    }

    #[test]
    fn error_display() {
        for e in [
            AxiomError::IncompleteOutcome,
            AxiomError::ReloadedRegister,
            AxiomError::UnattributableValue { value: 3 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
