//! State-space exploration of the operational SC/TSO machines.

use std::collections::{BTreeSet, HashSet};

use perple_model::{Instr, LitmusTest, Outcome, RegId, ThreadId};

/// The memory model driving the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// Sequential consistency: stores apply to memory immediately.
    Sc,
    /// x86-TSO: per-thread FIFO store buffers with forwarding; `MFENCE` and
    /// locked instructions require an empty buffer.
    Tso,
    /// Partial store order: like TSO but buffered stores to *different*
    /// locations may drain out of order (per-location FIFO only). Strictly
    /// weaker than TSO — a deliberately non-conformant machine used to
    /// demonstrate bug hunting (store-store reordering breaks `mp`).
    Pso,
}

impl std::fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryModel::Sc => write!(f, "SC"),
            MemoryModel::Tso => write!(f, "TSO"),
            MemoryModel::Pso => write!(f, "PSO"),
        }
    }
}

/// One machine configuration during exploration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    pc: Vec<u8>,
    /// Per-thread FIFO store buffer, oldest first. Always empty under SC.
    buffers: Vec<Vec<(u8, u32)>>,
    mem: Vec<u32>,
    regs: Vec<Vec<u32>>,
}

impl State {
    fn initial(test: &LitmusTest) -> Self {
        State {
            pc: vec![0; test.thread_count()],
            buffers: vec![Vec::new(); test.thread_count()],
            mem: test.init_values().to_vec(),
            regs: test
                .threads()
                .iter()
                .enumerate()
                .map(|(t, _)| {
                    let nregs = test
                        .thread(ThreadId(t as u8))
                        .iter()
                        .filter_map(|i| i.load_target())
                        .map(|(r, _)| r.index() + 1)
                        .max()
                        .unwrap_or(0);
                    vec![0; nregs]
                })
                .collect(),
        }
    }

    fn is_final(&self, test: &LitmusTest) -> bool {
        self.pc
            .iter()
            .enumerate()
            .all(|(t, &pc)| pc as usize == test.thread(ThreadId(t as u8)).len())
            && self.buffers.iter().all(Vec::is_empty)
    }

    /// Value a load of `loc` observes for thread `t`: newest buffered store
    /// to `loc` (forwarding) or memory.
    fn read(&self, t: usize, loc: usize) -> u32 {
        self.buffers[t]
            .iter()
            .rev()
            .find(|&&(l, _)| l as usize == loc)
            .map(|&(_, v)| v)
            .unwrap_or(self.mem[loc])
    }
}

/// The set of executions (register valuation plus final memory) reachable
/// for one test under one memory model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionSet {
    model: MemoryModel,
    executions: BTreeSet<(Outcome, Vec<u32>)>,
    states_explored: usize,
}

impl ExecutionSet {
    /// The model the set was enumerated under.
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// All `(registers, final memory)` executions.
    pub fn executions(&self) -> impl Iterator<Item = &(Outcome, Vec<u32>)> {
        self.executions.iter()
    }

    /// Number of distinct final executions.
    pub fn len(&self) -> usize {
        self.executions.len()
    }

    /// True if no execution terminates (cannot happen for well-formed
    /// litmus tests).
    pub fn is_empty(&self) -> bool {
        self.executions.is_empty()
    }

    /// Number of machine states visited during enumeration.
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }

    /// The distinct register valuations, ignoring final memory.
    pub fn register_outcomes(&self) -> BTreeSet<Outcome> {
        self.executions.iter().map(|(o, _)| o.clone()).collect()
    }

    /// True if some execution satisfies the test's condition.
    pub fn condition_reachable(&self, test: &LitmusTest) -> bool {
        self.executions
            .iter()
            .any(|(o, mem)| test.target().matches(o, mem))
    }
}

/// Exhaustively enumerates all executions of `test` under `model`.
///
/// The search memoizes machine states; litmus-scale tests (≤ 4 threads,
/// ≤ 6 instructions each) finish in well under a millisecond.
pub fn enumerate(test: &LitmusTest, model: MemoryModel) -> ExecutionSet {
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(test)];
    let mut executions = BTreeSet::new();
    let load_regs: Vec<(ThreadId, RegId)> = test
        .load_slots()
        .iter()
        .map(|s| (s.thread, s.reg))
        .collect();

    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.is_final(test) {
            let mut outcome = Outcome::new();
            for &(t, r) in &load_regs {
                outcome.set(t, r, state.regs[t.index()][r.index()]);
            }
            executions.insert((outcome, state.mem.clone()));
            continue;
        }
        for next in successors(test, &state, model) {
            if !visited.contains(&next) {
                stack.push(next);
            }
        }
    }

    ExecutionSet {
        model,
        executions,
        states_explored: visited.len(),
    }
}

fn successors(test: &LitmusTest, state: &State, model: MemoryModel) -> Vec<State> {
    let mut out = Vec::new();
    for t in 0..test.thread_count() {
        let instrs = test.thread(ThreadId(t as u8));
        // Drain buffered stores (buffers stay empty under SC). TSO drains
        // strictly in FIFO order; PSO may drain the oldest entry of *any*
        // location (per-location FIFO only).
        match model {
            MemoryModel::Sc => {}
            MemoryModel::Tso => {
                if let Some(&(loc, v)) = state.buffers[t].first() {
                    let mut s = state.clone();
                    s.buffers[t].remove(0);
                    s.mem[loc as usize] = v;
                    out.push(s);
                }
            }
            MemoryModel::Pso => {
                let mut seen_locs = Vec::new();
                for (i, &(loc, v)) in state.buffers[t].iter().enumerate() {
                    if seen_locs.contains(&loc) {
                        continue; // only the oldest entry per location
                    }
                    seen_locs.push(loc);
                    let mut s = state.clone();
                    s.buffers[t].remove(i);
                    s.mem[loc as usize] = v;
                    out.push(s);
                }
            }
        }
        let pc = state.pc[t] as usize;
        if pc >= instrs.len() {
            continue;
        }
        match instrs[pc] {
            Instr::Store { loc, value } => {
                let mut s = state.clone();
                s.pc[t] += 1;
                match model {
                    MemoryModel::Sc => s.mem[loc.index()] = value,
                    MemoryModel::Tso | MemoryModel::Pso => s.buffers[t].push((loc.0, value)),
                }
                out.push(s);
            }
            Instr::Load { reg, loc } => {
                let mut s = state.clone();
                s.pc[t] += 1;
                s.regs[t][reg.index()] = state.read(t, loc.index());
                out.push(s);
            }
            Instr::Mfence => {
                if state.buffers[t].is_empty() {
                    let mut s = state.clone();
                    s.pc[t] += 1;
                    out.push(s);
                }
            }
            Instr::Xchg { reg, loc, value } => {
                if state.buffers[t].is_empty() {
                    let mut s = state.clone();
                    s.pc[t] += 1;
                    s.regs[t][reg.index()] = state.mem[loc.index()];
                    s.mem[loc.index()] = value;
                    out.push(s);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;
    use perple_model::TestBuilder;

    #[test]
    fn sb_under_sc_has_three_outcomes() {
        let sb = suite::sb();
        let sc = enumerate(&sb, MemoryModel::Sc);
        let labels: Vec<String> = sc.register_outcomes().iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["01", "10", "11"]);
    }

    #[test]
    fn sb_under_tso_has_all_four_outcomes() {
        let sb = suite::sb();
        let tso = enumerate(&sb, MemoryModel::Tso);
        let labels: Vec<String> = tso.register_outcomes().iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["00", "01", "10", "11"]);
    }

    #[test]
    fn fenced_sb_loses_the_weak_outcome() {
        let amd5 = suite::amd5();
        let tso = enumerate(&amd5, MemoryModel::Tso);
        assert!(!tso.register_outcomes().iter().any(|o| o.label() == "00"));
    }

    #[test]
    fn forwarding_reads_own_buffered_store() {
        // P0: x=1; EAX=x — under TSO the load must forward 1 even while the
        // store sits in the buffer; EAX=0 is unreachable.
        let mut b = TestBuilder::new("fwd");
        b.thread().store("x", 1).load("EAX", "x");
        b.reg_cond(0, "EAX", 0);
        let t = b.build().unwrap();
        let tso = enumerate(&t, MemoryModel::Tso);
        assert_eq!(tso.register_outcomes().len(), 1);
        assert!(!tso.condition_reachable(&t));
    }

    #[test]
    fn xchg_reads_memory_not_buffer() {
        // The locked exchange waits for the buffer to drain; it always reads
        // the pre-exchange memory value.
        let mut b = TestBuilder::new("x");
        b.thread().store("y", 5).xchg("EAX", "x", 1);
        b.reg_cond(0, "EAX", 0);
        let t = b.build().unwrap();
        let tso = enumerate(&t, MemoryModel::Tso);
        assert!(tso.condition_reachable(&t));
        // Final memory must contain both stores.
        for (_, mem) in tso.executions() {
            assert_eq!(mem, &vec![5, 1]);
        }
    }

    #[test]
    fn final_memory_reflects_write_serialization() {
        let mut b = TestBuilder::new("co");
        b.thread().store("x", 1);
        b.thread().store("x", 2);
        b.mem_cond("x", 1);
        let t = b.build().unwrap();
        let tso = enumerate(&t, MemoryModel::Tso);
        let finals: BTreeSet<Vec<u32>> = tso.executions().map(|(_, m)| m.clone()).collect();
        assert_eq!(finals, BTreeSet::from([vec![1], vec![2]]));
        assert!(tso.condition_reachable(&t));
    }

    #[test]
    fn buffers_drain_before_termination() {
        // A store-only test must leave its value in memory.
        let mut b = TestBuilder::new("drain");
        b.thread().store("x", 1);
        b.mem_cond("x", 1);
        let t = b.build().unwrap();
        let tso = enumerate(&t, MemoryModel::Tso);
        assert_eq!(tso.len(), 1);
        assert!(tso.condition_reachable(&t));
    }

    #[test]
    fn state_counts_are_reported() {
        let sb = suite::sb();
        let tso = enumerate(&sb, MemoryModel::Tso);
        assert!(tso.states_explored() > 10);
        assert!(!tso.is_empty());
        assert_eq!(tso.model(), MemoryModel::Tso);
        assert_eq!(MemoryModel::Tso.to_string(), "TSO");
        assert_eq!(MemoryModel::Sc.to_string(), "SC");
    }

    #[test]
    fn pso_allows_store_store_reordering() {
        // mp's target needs the producer's stores to reorder: forbidden
        // under TSO, allowed under PSO.
        let mp = suite::mp();
        let tso = enumerate(&mp, MemoryModel::Tso);
        let pso = enumerate(&mp, MemoryModel::Pso);
        assert!(!tso.condition_reachable(&mp));
        assert!(pso.condition_reachable(&mp));
    }

    #[test]
    fn pso_is_a_superset_of_tso() {
        for test in suite::convertible() {
            let tso = enumerate(&test, MemoryModel::Tso);
            let pso = enumerate(&test, MemoryModel::Pso);
            assert!(
                tso.register_outcomes().is_subset(&pso.register_outcomes()),
                "{}",
                test.name()
            );
        }
    }

    #[test]
    fn pso_preserves_load_store_order_and_per_location_coherence() {
        // lb (load->store) stays forbidden, and so does single-location
        // reordering (per-location FIFO).
        let lb = suite::lb();
        assert!(!enumerate(&lb, MemoryModel::Pso).condition_reachable(&lb));
        let co = suite::co_iriw();
        assert!(!enumerate(&co, MemoryModel::Pso).condition_reachable(&co));
    }

    #[test]
    fn fences_still_restore_order_under_pso() {
        let safe022 = suite::safe022(); // mp with a producer-side fence
        assert!(!enumerate(&safe022, MemoryModel::Pso).condition_reachable(&safe022));
        assert_eq!(MemoryModel::Pso.to_string(), "PSO");
    }

    #[test]
    fn iriw_outcome_counts() {
        // iriw has 4 loads; TSO forbids the disagreeing outcome but allows
        // most others. SC allows strictly fewer.
        let t = suite::iriw();
        let sc = enumerate(&t, MemoryModel::Sc);
        let tso = enumerate(&t, MemoryModel::Tso);
        assert!(sc.register_outcomes().len() <= tso.register_outcomes().len());
        assert!(!tso.condition_reachable(&t));
        assert!(!sc.condition_reachable(&t));
    }
}
