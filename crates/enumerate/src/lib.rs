//! # perple-enumerate
//!
//! Exhaustive operational enumeration of litmus-test executions under
//! **sequential consistency (SC)** and **x86-TSO**, playing the role the
//! `herd` memory-model simulator plays in the PerpLE paper: classifying each
//! test's target outcome as *allowed* or *forbidden* (Table II).
//!
//! The TSO machine is the operational x86-TSO model of Owens, Sarkar and
//! Sewell: each hardware thread owns a FIFO store buffer; stores enter the
//! buffer, drain to shared memory in order at nondeterministic times, loads
//! forward from the newest buffered store to the same address, `MFENCE` and
//! locked instructions wait for an empty buffer. SC is the same machine with
//! stores applied directly to memory.
//!
//! Enumeration is a depth-first search over all interleavings of
//! instruction execution and buffer drains, memoizing visited machine states
//! so the search is exact and terminates quickly for litmus-scale programs.
//!
//! # Example
//!
//! ```
//! use perple_enumerate::{classify, MemoryModel, enumerate};
//! use perple_model::suite;
//!
//! let sb = suite::sb();
//! let c = classify(&sb);
//! // The sb target (both loads 0) needs store buffering:
//! assert!(c.tso_allowed && !c.sc_allowed);
//!
//! // TSO executions strictly include the SC ones.
//! let sc = enumerate(&sb, MemoryModel::Sc);
//! let tso = enumerate(&sb, MemoryModel::Tso);
//! assert!(sc.register_outcomes().is_subset(&tso.register_outcomes()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axiomatic;
mod explore;

pub use explore::{enumerate, ExecutionSet, MemoryModel};

use perple_model::LitmusTest;

/// Whether each memory model can realize a test's condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The condition is reachable under sequential consistency.
    pub sc_allowed: bool,
    /// The condition is reachable under x86-TSO.
    pub tso_allowed: bool,
}

impl Classification {
    /// True if the condition distinguishes TSO from SC: reachable only with
    /// store buffering. Such conditions are the paper's *target outcomes*.
    pub fn is_target(&self) -> bool {
        self.tso_allowed && !self.sc_allowed
    }
}

/// Classifies the test's own condition under SC and x86-TSO.
pub fn classify(test: &LitmusTest) -> Classification {
    let sc = enumerate(test, MemoryModel::Sc);
    let tso = enumerate(test, MemoryModel::Tso);
    Classification {
        sc_allowed: sc.condition_reachable(test),
        tso_allowed: tso.condition_reachable(test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    #[test]
    fn table_ii_split_matches_enumeration() {
        // The central cross-check: our reconstruction of Table II must agree
        // with the operational x86-TSO model on every allowed/forbidden bit.
        for (test, entry) in suite::convertible().iter().zip(suite::TABLE_II) {
            let c = classify(test);
            assert_eq!(
                c.tso_allowed, entry.allowed,
                "{}: expected tso_allowed={}",
                entry.name, entry.allowed
            );
        }
    }

    #[test]
    fn allowed_targets_are_true_targets() {
        // Allowed targets must be TSO-only (store-buffering-revealing).
        for test in suite::allowed_targets() {
            let c = classify(&test);
            assert!(c.is_target(), "{} target should be TSO-only", test.name());
        }
    }

    #[test]
    fn sc_outcomes_subset_of_tso_for_whole_suite() {
        for test in suite::convertible() {
            let sc = enumerate(&test, MemoryModel::Sc);
            let tso = enumerate(&test, MemoryModel::Tso);
            assert!(
                sc.register_outcomes().is_subset(&tso.register_outcomes()),
                "{}",
                test.name()
            );
        }
    }

    #[test]
    fn hb_acyclicity_agrees_with_operational_sc() {
        // The axiomatic SC check (happens-before acyclicity over all write
        // serializations) must agree with the operational SC enumerator on
        // every complete register outcome of every convertible test.
        for test in suite::convertible() {
            let sc = enumerate(&test, MemoryModel::Sc);
            let reachable = sc.register_outcomes();
            for outcome in test.possible_outcomes() {
                let axiomatic = match perple_model::hb::is_sc_consistent(&test, &outcome) {
                    Ok(b) => b,
                    // A value no store produces is unreachable operationally.
                    Err(perple_model::hb::HbError::NoWriter { .. }) => {
                        assert!(
                            !reachable.contains(&outcome),
                            "{}: unattributable outcome {outcome} was reached",
                            test.name()
                        );
                        continue;
                    }
                    // Ambiguous/reloaded registers: the axiomatic check
                    // abstains; nothing to compare.
                    Err(_) => continue,
                };
                assert_eq!(
                    axiomatic,
                    reachable.contains(&outcome),
                    "{}: axiomatic/operational SC disagree on {outcome}",
                    test.name()
                );
            }
        }
    }
}
