//! Workspace umbrella crate hosting the repository-level examples and
//! integration tests. The actual library surface lives in [`perple`] and the
//! crates it re-exports.
//!
//! [`prop`] is a small seeded property-testing harness used by the
//! integration tests (the external `proptest` crate is unavailable in the
//! offline build environment).

#![forbid(unsafe_code)]

pub use perple;

pub mod prop {
    //! Minimal property-based testing: a seeded generator plus a case
    //! runner that reports the failing case's seed so failures reproduce
    //! deterministically (`Gen::new(seed)` with the printed seed).

    /// Seeded pseudo-random generator for test inputs (xorshift64*, the
    /// same family the simulator uses — deterministic across platforms).
    #[derive(Debug, Clone)]
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// Creates a generator from a seed (zero is remapped).
        pub fn new(seed: u64) -> Self {
            Self {
                state: if seed == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    seed
                },
            }
        }

        /// Next raw 64-bit value.
        pub fn u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `0..n` (`n = 0` returns 0).
        pub fn below(&mut self, n: usize) -> usize {
            if n == 0 {
                return 0;
            }
            (self.u64() % n as u64) as usize
        }

        /// Uniform `u64` in `lo..hi` (half-open; `lo >= hi` returns `lo`).
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            if lo >= hi {
                return lo;
            }
            lo + self.u64() % (hi - lo)
        }

        /// Uniform choice from a non-empty slice.
        pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
            assert!(!items.is_empty(), "choose from an empty slice");
            &items[self.below(items.len())]
        }

        /// Bernoulli draw with probability `num / den`.
        pub fn chance(&mut self, num: u64, den: u64) -> bool {
            self.u64() % den < num
        }

        /// Vector of `len` raw values.
        pub fn vec_u64(&mut self, len: usize) -> Vec<u64> {
            (0..len).map(|_| self.u64()).collect()
        }

        /// String of `len` characters drawn from `alphabet`.
        pub fn string_from(&mut self, alphabet: &str, len: usize) -> String {
            let chars: Vec<char> = alphabet.chars().collect();
            (0..len).map(|_| *self.choose(&chars)).collect()
        }

        /// Arbitrary text up to `max_len` characters: printable ASCII,
        /// whitespace, and a few multi-byte characters — the shapes a
        /// parser must tolerate.
        pub fn arbitrary_text(&mut self, max_len: usize) -> String {
            let len = self.below(max_len + 1);
            (0..len)
                .map(|_| match self.below(10) {
                    0 => '\n',
                    1 => ';',
                    2 => '|',
                    3 => 'Ω',
                    4 => '\t',
                    _ => char::from(0x20 + self.below(0x5f) as u8),
                })
                .collect()
        }
    }

    /// Runs `cases` property checks, deriving one deterministic seed per
    /// case. On failure the panic message names the case and its seed so
    /// the exact input regenerates.
    pub fn run_cases(cases: u64, f: impl Fn(&mut Gen)) {
        for case in 0..cases {
            // Golden-ratio stride decorrelates successive case seeds.
            let seed = 0xC0FF_EE00_D15C_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut g = Gen::new(seed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut g)));
            if let Err(payload) = result {
                eprintln!("property failed at case {case} (Gen seed {seed:#x})");
                std::panic::resume_unwind(payload);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn generator_is_deterministic_per_seed() {
            let mut a = Gen::new(42);
            let mut b = Gen::new(42);
            let va: Vec<u64> = (0..16).map(|_| a.u64()).collect();
            let vb: Vec<u64> = (0..16).map(|_| b.u64()).collect();
            assert_eq!(va, vb);
            assert_ne!(va, (0..16).map(|_| Gen::new(43).u64()).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_draws_stay_in_bounds() {
            let mut g = Gen::new(7);
            for _ in 0..1000 {
                assert!(g.below(10) < 10);
                let v = g.range_u64(5, 9);
                assert!((5..9).contains(&v));
                assert_eq!(g.range_u64(3, 3), 3);
            }
            assert_eq!(g.below(0), 0);
        }

        #[test]
        fn run_cases_reports_failing_seed() {
            let hit = std::panic::catch_unwind(|| {
                run_cases(5, |g| {
                    let v = g.u64();
                    assert!(v % 2 == 0 || v % 2 == 1); // never fails
                })
            });
            assert!(hit.is_ok());
            let fails = std::panic::catch_unwind(|| run_cases(3, |_| panic!("boom")));
            assert!(fails.is_err());
        }

        #[test]
        fn string_generators_respect_alphabet_and_length() {
            let mut g = Gen::new(11);
            let s = g.string_from("abc", 50);
            assert_eq!(s.chars().count(), 50);
            assert!(s.chars().all(|c| "abc".contains(c)));
            for _ in 0..100 {
                assert!(g.arbitrary_text(30).chars().count() <= 30);
            }
        }
    }
}
