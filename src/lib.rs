//! Workspace umbrella crate hosting the repository-level examples and
//! integration tests. The actual library surface lives in [`perple`] and the
//! crates it re-exports.

#![forbid(unsafe_code)]

pub use perple;
