//! Skew explorer: how scheduler dynamics shape the thread-skew distribution
//! (Figure 12) and, through it, the variety of observable outcomes.
//!
//! Runs the perpetual sb test under several simulator configurations —
//! lockstep-ish, default, and preemption-heavy — and prints each skew PDF
//! side by side.
//!
//! ```text
//! cargo run --release --example skew_explorer [iterations]
//! ```

use perple::skew::{skew_histogram, skew_samples};
use perple::{Conversion, PerpleRunner, SimConfig};
use perple_model::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(50_000);

    let sb = suite::sb();
    let conv = Conversion::convert(&sb)?;

    let configs: Vec<(&str, SimConfig)> = vec![
        (
            "lockstep (no preemption, rare stalls)",
            SimConfig::default()
                .with_seed(1)
                .with_preemption(0.0, 0)
                .with_stalls(0.01, 1),
        ),
        ("default", SimConfig::default().with_seed(1)),
        (
            "preemption-heavy (noisy co-runners)",
            SimConfig::default()
                .with_seed(1)
                .with_preemption(2e-3, 1_500),
        ),
    ];

    for (label, config) in configs {
        let mut runner = PerpleRunner::new(config);
        let run = runner.run(&conv.perpetual, iterations);
        let bufs = run.bufs();
        let samples = skew_samples(&sb, &conv.kmap, &bufs);
        let h = skew_histogram(&samples);

        println!("=== {label} ===");
        println!(
            "  samples={} range=[{}, {}] mean={:.2} stddev={:.2} mass(|skew|<=2)={:.3}",
            h.total(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.mean().unwrap_or(0.0),
            h.stddev().unwrap_or(0.0),
            h.mass_within(2),
        );
        let spread = (h.max().unwrap_or(1) - h.min().unwrap_or(0))
            .unsigned_abs()
            .max(1);
        let width = (spread / 20).max(1);
        for (lower, p) in h.pdf_bucketed(width) {
            let bar = "#".repeat((p * 200.0).round() as usize);
            println!("  {lower:>8} {p:>8.4} {bar}");
        }
        println!();
    }
    println!(
        "wider skew distributions mean more cross-iteration interleavings — \
         the effect the paper credits for PerpLE's outcome variety (§VII-E)"
    );
    Ok(())
}
