//! Native hardware run: execute the perpetual sb test on **real threads**
//! with x86 atomics (plain `mov` stores/loads), then count outcomes — the
//! substrate the paper actually evaluated on.
//!
//! On a multi-core x86 machine the target outcome (store buffering) shows
//! up natively; on a single-core machine threads timeslice and the weak
//! outcome essentially disappears — which this example demonstrates and
//! which is why the simulated substrate drives the experiments (DESIGN.md).
//!
//! ```text
//! cargo run --release --example native_x86 [iterations]
//! ```

use perple::{native, Conversion, CountRequest, Counter, HeuristicCounter};
use perple_model::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(200_000);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host: {cores} hardware thread(s) available");

    let sb = suite::sb();
    let conv = Conversion::convert(&sb)?;

    // Perpetual run on real threads.
    let run = native::run_perpetual(&conv.perpetual, iterations);
    let bufs = run.bufs();
    let target = HeuristicCounter::single(&conv.target_heuristic)
        .count(&CountRequest::new(&bufs, iterations));
    println!(
        "perpetual sb natively: {iterations} iterations in {:?} ({:.1} ns/iter)",
        run.wall,
        run.wall.as_nanos() as f64 / iterations as f64
    );
    println!(
        "store-buffering (target) frames found: {}",
        target.counts[0]
    );

    // Full outcome variety.
    let all = conv.all_outcomes(&sb)?;
    let heus: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();
    let variety = HeuristicCounter::each(&heus).count(&CountRequest::new(&bufs, iterations));
    println!("outcome variety (per-outcome frame sampling):");
    for ((o, _), c) in all.iter().zip(&variety.counts) {
        println!("  {:>4}: {c}", o.label());
    }

    // Sanity: a fenced test must never show its forbidden target natively.
    let amd5 = suite::amd5();
    let conv5 = Conversion::convert(&amd5)?;
    let run5 = native::run_perpetual(&conv5.perpetual, iterations.min(50_000));
    let bufs5 = run5.bufs();
    let n5 = run5.iterations;
    let forbidden =
        HeuristicCounter::single(&conv5.target_heuristic).count(&CountRequest::new(&bufs5, n5));
    println!(
        "fenced sb (amd5) forbidden-target frames: {} (must be 0)",
        forbidden.counts[0]
    );
    assert_eq!(forbidden.counts[0], 0, "x86 fence violation observed!");

    if cores == 1 {
        println!(
            "note: single-core host — weak outcomes require timeslicing luck; \
             run the simulated experiments (perple-bench) for the paper's figures"
        );
    }
    Ok(())
}
