//! Quickstart: convert the store-buffering litmus test to its perpetual
//! form, run it synchronization-free on the simulated x86-TSO machine, and
//! count the target outcome with both counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perple::{Perple, SimConfig};
use perple_model::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sb = suite::sb();
    println!("original litmus test:\n{sb}");

    let mut engine = Perple::with_config(&sb, SimConfig::default().with_seed(42))?;
    println!(
        "perpetual form: {} threads, T_L = {}, reads per thread = {:?}",
        engine.conversion().perpetual.thread_count(),
        engine.conversion().perpetual.load_thread_count(),
        engine.conversion().perpetual.reads_per_thread(),
    );

    let n = 10_000;
    let result = engine.run(n);
    println!(
        "\nran {n} perpetual iterations in {} simulated cycles",
        result.run.exec_cycles
    );
    println!(
        "target outcome (both loads stale — requires store buffering):  \
         heuristic counter found {} (scanned {} frames), exhaustive counter \
         found {} (scanned {} frames)",
        result.target_heuristic.counts[0],
        result.target_heuristic.frames_examined,
        result.target_exhaustive.counts[0],
        result.target_exhaustive.frames_examined,
    );

    // The same workflow rejects non-convertible tests.
    let co = suite::by_name("2+2w").expect("suite test");
    match Perple::new(&co) {
        Err(e) => println!("\n2+2w is not convertible (as expected): {e}"),
        Ok(_) => unreachable!("2+2w inspects final memory"),
    }
    Ok(())
}
