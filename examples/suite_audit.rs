//! Suite audit: run every convertible test of the perpetual litmus suite
//! (Table II) through the full PerpLE pipeline, verify the classification
//! against the SC/TSO enumerators, and report target-outcome counts.
//!
//! This is the Figure-9-style consistency audit a hardware team would run
//! against a new implementation: forbidden targets firing would indicate a
//! memory-model bug.
//!
//! ```text
//! cargo run --release --example suite_audit [iterations]
//! ```

use perple::{classify, Perple, SimConfig};
use perple_model::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2_000);

    println!(
        "{:<16} {:>6} {:>6} {:>12} {:>10}  verdict",
        "test", "T", "T_L", "tso-allowed", "target#"
    );
    let mut bugs = 0;
    for (test, entry) in suite::convertible().iter().zip(suite::TABLE_II) {
        let class = classify(test);
        let mut engine =
            Perple::with_config(test, SimConfig::default().with_seed(0xA0D17 ^ iterations))?;
        let (_, count) = engine.run_heuristic_only(iterations);
        let hits = count.counts[0];

        let verdict = match (class.tso_allowed, hits) {
            (false, 0) => "ok (forbidden, unseen)",
            (false, _) => {
                bugs += 1;
                "BUG: forbidden target observed!"
            }
            (true, 0) => "quiet (allowed, not yet seen)",
            (true, _) => "ok (allowed, observed)",
        };
        println!(
            "{:<16} {:>6} {:>6} {:>12} {:>10}  {verdict}",
            test.name(),
            entry.threads,
            entry.load_threads,
            class.tso_allowed,
            hits
        );
        assert_eq!(class.tso_allowed, entry.allowed, "classification drift");
    }
    println!("\naudit complete: {bugs} consistency violations");
    if bugs > 0 {
        std::process::exit(1);
    }
    Ok(())
}
