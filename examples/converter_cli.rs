//! Converter CLI: parse a litmus7-format test (from a file or stdin) and
//! emit the paper's Converter artifacts — per-thread perpetual x86
//! assembly, the C sources of `COUNT` and `COUNTH`, and the `t<i>_reads`
//! parameter file (§V-A).
//!
//! ```text
//! cargo run --release --example converter_cli -- path/to/test.litmus
//! echo "..." | cargo run --release --example converter_cli
//! ```

use std::io::Read as _;

use perple_convert::{codegen, Conversion, HeuristicOutcome};
use perple_model::parser;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            if buf.trim().is_empty() {
                // No input: demonstrate on the classic sb test.
                perple_model::printer::print(&perple_model::suite::sb())
            } else {
                buf
            }
        }
    };

    let test = parser::parse(&source)?;
    println!(
        "parsed test {:?} ({} threads)\n",
        test.name(),
        test.thread_count()
    );

    let conv = match Conversion::convert(&test) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "test {:?} is not convertible to a perpetual litmus test: {e}\n\
                 (it can still be run with the litmus7-style baseline)",
                test.name()
            );
            std::process::exit(1);
        }
    };

    for (t, asm) in codegen::emit_thread_asm(&conv.perpetual).iter().enumerate() {
        println!("==== {}_thread_{t}.s ====", test.name());
        println!("{asm}");
    }

    println!("==== {}_params ====", test.name());
    println!("{}", codegen::emit_params(&conv.perpetual));

    let all = conv.all_outcomes(&test)?;
    let outcomes: Vec<_> = all.iter().map(|(o, _)| o.clone()).collect();
    let heuristics: Vec<HeuristicOutcome> = all.into_iter().map(|(_, h)| h).collect();

    println!(
        "==== {}_count.c (exhaustive outcome counter) ====",
        test.name()
    );
    println!("{}", codegen::emit_count_c(&conv.perpetual, &outcomes));

    println!(
        "==== {}_counth.c (heuristic outcome counter) ====",
        test.name()
    );
    println!("{}", codegen::emit_counth_c(&conv.perpetual, &heuristics));
    Ok(())
}
