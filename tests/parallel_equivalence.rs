//! Parallel/serial equivalence suite: for every convertible Table II test,
//! the frame-sharded parallel counters must be **bit-identical** to their
//! serial references at every worker count — counts, frames examined,
//! condition evaluations, and truncation flag. This is the proof obligation
//! behind `--workers N`: parallelism may only change wall time.

use perple::{
    frame_space, Conversion, CountRequest, Counter, ExhaustiveCounter, HeuristicCounter,
    PerpleRunner, SimConfig,
};
use perple_model::suite;

const WORKERS: [usize; 4] = [1, 2, 3, 7];

/// Asserts every merged field matches the serial reference (wall time is
/// the one field allowed to differ).
fn assert_identical(serial: &perple::CountResult, parallel: &perple::CountResult, ctx: &str) {
    assert_eq!(serial.counts, parallel.counts, "{ctx}: counts");
    assert_eq!(
        serial.frames_examined, parallel.frames_examined,
        "{ctx}: frames_examined"
    );
    assert_eq!(serial.evals, parallel.evals, "{ctx}: evals");
    assert_eq!(serial.truncated, parallel.truncated, "{ctx}: truncated");
}

#[test]
fn every_convertible_test_counts_identically_at_all_worker_counts() {
    let n = 120u64;
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("convertible suite test");
        let all = conv.all_outcomes(&test).expect("outcomes");
        let exh: Vec<_> = all.iter().map(|(o, _)| o.clone()).collect();
        let heu: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();

        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xEC_0123));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();

        // Cap T_L = 3 tests so the serial reference stays fast; the cap is
        // itself part of what must match (a global frame-space prefix).
        let cap = if bufs.len() >= 3 { Some(200_000) } else { None };
        let serial = CountRequest::new(&bufs, n);
        let se = ExhaustiveCounter::new(&exh).count(&serial.with_frame_cap(cap));
        let sh = HeuristicCounter::new(&heu).count(&serial);
        let sa = HeuristicCounter::each(&heu).count(&serial);

        for w in WORKERS {
            let name = test.name();
            let req = CountRequest::new(&bufs, n).with_workers(w);
            let pe = ExhaustiveCounter::new(&exh).count(&req.with_frame_cap(cap));
            assert_identical(&se, &pe, &format!("{name} exhaustive, workers {w}"));
            let ph = HeuristicCounter::new(&heu).count(&req);
            assert_identical(&sh, &ph, &format!("{name} heuristic, workers {w}"));
            let pa = HeuristicCounter::each(&heu).count(&req);
            assert_identical(&sa, &pa, &format!("{name} heuristic-each, workers {w}"));
        }
    }
}

#[test]
fn truncated_scans_agree_because_the_cap_is_a_global_prefix() {
    // sb at N = 300 has 90 000 frames; a 10 000-frame cap truncates. A
    // sharded scan must split the *prefix*, not give each worker its own
    // cap — this test fails if anyone reintroduces per-worker caps.
    let test = suite::sb();
    let conv = Conversion::convert(&test).expect("converts");
    let n = 300u64;
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x7C));
    let run = runner.run(&conv.perpetual, n);
    let bufs = run.bufs();
    let outcomes = std::slice::from_ref(&conv.target_exhaustive);

    for cap in [0u64, 1, 9_999, 10_000, 90_000, 90_001] {
        let req = CountRequest::new(&bufs, n).with_frame_cap(Some(cap));
        let se = ExhaustiveCounter::new(outcomes).count(&req);
        assert_eq!(se.truncated, cap < 90_000, "cap {cap}");
        for w in WORKERS {
            let pe = ExhaustiveCounter::new(outcomes).count(&req.with_workers(w));
            assert_identical(&se, &pe, &format!("sb cap {cap}, workers {w}"));
        }
    }
}

#[test]
fn three_load_thread_tests_shard_the_cubic_frame_space_identically() {
    // podwr001 has T_L = 3: the N^3 space exercises the base-N seek with
    // more than one digit, where an off-by-one in frame_at corrupts whole
    // shards rather than single frames.
    let test = suite::by_name("podwr001").expect("suite test");
    let conv = Conversion::convert(&test).expect("converts");
    let all = conv.all_outcomes(&test).expect("outcomes");
    let exh: Vec<_> = all.iter().map(|(o, _)| o.clone()).collect();

    let n = 40u64;
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x3D));
    let run = runner.run(&conv.perpetual, n);
    let bufs = run.bufs();
    assert_eq!(bufs.len(), 3);
    assert_eq!(frame_space(n, 3), 64_000);

    let req = CountRequest::new(&bufs, n);
    let se = ExhaustiveCounter::new(&exh).count(&req);
    assert_eq!(se.frames_examined, 64_000);
    for w in [1usize, 2, 3, 7, 13, 64] {
        let pe = ExhaustiveCounter::new(&exh).count(&req.with_workers(w));
        assert_identical(&se, &pe, &format!("podwr001, workers {w}"));
    }
}

/// Builds the smoke report for one (seed, config): **only** deterministic
/// fields — counts, digests, config — no wall-clock values, so the file is
/// a pure function of the inputs and diffs stay meaningful.
fn smoke_report(seed: u64, n: u64, workers: usize) -> String {
    use perple::jsonout::Json;

    let test = suite::sb();
    let conv = Conversion::convert(&test).expect("converts");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
    let run = runner.run(&conv.perpetual, n);
    let bufs = run.bufs();

    let req = CountRequest::new(&bufs, n);
    let serial = ExhaustiveCounter::single(&conv.target_exhaustive).count(&req);
    let parallel =
        ExhaustiveCounter::single(&conv.target_exhaustive).count(&req.with_workers(workers));
    assert_identical(&serial, &parallel, "smoke");

    let mut s = Json::obj(vec![
        ("test", Json::from("sb")),
        ("seed", Json::from(seed)),
        ("n", Json::from(n)),
        ("count_workers", Json::from(workers)),
        ("target_count", Json::from(parallel.counts[0])),
        ("frames_examined", Json::from(parallel.frames_examined)),
        ("evals", Json::from(parallel.evals)),
        ("run_digest", Json::from(run.content_digest())),
        ("rate", Json::from(parallel.counts[0] as f64 / n as f64)),
    ])
    .render();
    s.push('\n');
    s
}

#[test]
fn parallel_smoke_report_is_byte_stable() {
    // End-to-end smoke of the parallel path under tier-1 `cargo test`,
    // with a determinism guarantee: rerunning the same (seed, config)
    // produces a byte-identical results file — stable key order, exact
    // integers, shortest-round-trip floats, and no embedded wall-clock
    // values (timings belong in campaign manifests, not here). The file
    // stops churning in diffs the moment behaviour stops changing.
    let (seed, n, workers) = (0x50_0BE5u64, 400u64, 4usize);

    let first = smoke_report(seed, n, workers);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/parallel_smoke.json", &first).expect("write smoke report");

    // A complete re-run of the pipeline — convert, simulate, count, render
    // — must reproduce the file byte for byte.
    let second = smoke_report(seed, n, workers);
    std::fs::write("results/parallel_smoke.json", &second).expect("rewrite smoke report");
    assert_eq!(
        first, second,
        "consecutive smoke reports must be byte-identical"
    );

    // And a different seed must NOT reproduce it (the stability above is
    // determinism, not a constant file).
    assert_ne!(first, smoke_report(seed + 1, n, workers));
}
