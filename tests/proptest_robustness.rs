//! Robustness properties: the parser never panics on arbitrary input, the
//! simulator only ever produces attributable values, counters respect their
//! algorithmic invariants, and the generator's tests round-trip.

use proptest::prelude::*;

use perple::{count_exhaustive, count_heuristic, Conversion, PerpleRunner, SimConfig};
use perple_convert::KMap;
use perple_model::{generate, parser, printer, suite};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,300}") {
        let _ = parser::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_litmus_shaped_garbage(
        name in "[a-z]{1,8}",
        cell in "(MOV|XCHG|MFENCE|QQQ) ?(\\[[xy]\\])?,?(\\$?[0-9]{1,3}|E[A-D]X)?",
    ) {
        let src = format!(
            "X86 {name}\n{{ x=0; }}\n P0 | P1 ;\n {cell} | {cell} ;\nexists (0:EAX=0)"
        );
        let _ = parser::parse(&src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulated_values_are_always_attributable(
        seed in any::<u64>(),
        test_idx in 0usize..34,
    ) {
        // Every non-zero loaded value must decode into some store's
        // sequence — the uniqueness property the whole analysis rests on.
        let test = &suite::convertible()[test_idx];
        let conv = Conversion::convert(test).expect("suite test converts");
        let kmap = KMap::compute(test).expect("kmap");
        let n = 150u64;
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let run = runner.run(&conv.perpetual, n);

        let reads = test.reads_per_thread();
        for (frame_pos, lt) in test.load_threads().iter().enumerate() {
            let r_t = reads[lt.index()];
            let slots: Vec<_> = test
                .load_slots()
                .into_iter()
                .filter(|s| s.thread == *lt)
                .collect();
            for i in 0..n as usize {
                for slot in &slots {
                    let val = run.frame_bufs[frame_pos][r_t * i + slot.slot];
                    if val == 0 {
                        continue;
                    }
                    let attributable = kmap.assignments_for(slot.loc).iter().any(|asg| {
                        KMap::decode(asg.k, asg.a, val)
                            .is_some_and(|m| m < n)
                    });
                    prop_assert!(
                        attributable,
                        "{}: unattributable value {val} at load slot {}",
                        test.name(),
                        slot.slot
                    );
                }
            }
        }
    }

    #[test]
    fn else_if_chains_count_at_most_one_outcome_per_frame(
        seed in any::<u64>(),
        name in prop::sample::select(vec!["sb", "lb", "amd3", "podwr001", "iwp24"]),
    ) {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let all = conv.all_outcomes(&test).expect("outcomes");
        let n = 60u64;
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();

        let exh: Vec<_> = all.iter().map(|(o, _)| o.clone()).collect();
        let re = count_exhaustive(&exh, &bufs, n, Some(1_000_000));
        prop_assert!(re.total() <= re.frames_examined);

        let heu: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();
        let rh = count_heuristic(&heu, &bufs, n);
        prop_assert!(rh.total() <= n);
    }

    #[test]
    fn traced_runs_are_bit_identical_to_untraced_runs(
        seed in any::<u64>(),
        name in prop::sample::select(vec!["sb", "mp", "iriw"]),
    ) {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let specs = perple_harness::perpetual::thread_specs(&conv.perpetual, 80);
        let mut m1 = perple_sim::Machine::new(SimConfig::default().with_seed(seed));
        let plain = m1.run(&specs, test.location_count());
        let mut m2 = perple_sim::Machine::new(SimConfig::default().with_seed(seed));
        let mut trace = perple_sim::Trace::with_capacity(64);
        let traced = m2.run_traced(&specs, test.location_count(), &mut trace);
        prop_assert_eq!(plain, traced);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_tests_roundtrip_through_text(idx in 0usize..60) {
        let family = generate::generate_family(4);
        let test = &family[idx % family.len()];
        let text = printer::print(test);
        let back = parser::parse(&text).expect("generated test reparses");
        prop_assert_eq!(test, &back);
    }
}
