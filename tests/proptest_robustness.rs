//! Robustness properties: the parser never panics on arbitrary input, the
//! simulator only ever produces attributable values, counters respect their
//! algorithmic invariants (serial and parallel), and the generator's tests
//! round-trip. Runs on the in-repo [`perple_repro::prop`] harness.

use perple::{
    frame_at, frame_index, frame_space, Conversion, CountRequest, Counter, ExhaustiveCounter,
    HeuristicCounter, PerpleRunner, SimConfig,
};
use perple_convert::KMap;
use perple_model::{generate, parser, printer, suite};
use perple_repro::prop::run_cases;

#[test]
fn parser_never_panics_on_arbitrary_input() {
    run_cases(64, |g| {
        let input = g.arbitrary_text(300);
        let _ = parser::parse(&input);
    });
}

#[test]
fn parser_never_panics_on_litmus_shaped_garbage() {
    let ops = ["MOV", "XCHG", "MFENCE", "QQQ"];
    let addrs = ["", "[x]", "[y]"];
    let vals = ["", "$1", "$255", "EAX", "EBX", "ECX", "EDX"];
    run_cases(64, |g| {
        let name_len = 1 + g.below(8);
        let name = g.string_from("abcdefghijklmnopqrstuvwxyz", name_len);
        let cell = format!(
            "{} {},{}",
            g.choose(&ops),
            g.choose(&addrs),
            g.choose(&vals)
        );
        let src =
            format!("X86 {name}\n{{ x=0; }}\n P0 | P1 ;\n {cell} | {cell} ;\nexists (0:EAX=0)");
        let _ = parser::parse(&src);
    });
}

#[test]
fn simulated_values_are_always_attributable() {
    // Every non-zero loaded value must decode into some store's
    // sequence — the uniqueness property the whole analysis rests on.
    run_cases(16, |g| {
        let tests = suite::convertible();
        let test = g.choose(&tests);
        let seed = g.u64();
        let conv = Conversion::convert(test).expect("suite test converts");
        let kmap = KMap::compute(test).expect("kmap");
        let n = 150u64;
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let run = runner.run(&conv.perpetual, n);

        let reads = test.reads_per_thread();
        for (frame_pos, lt) in test.load_threads().iter().enumerate() {
            let r_t = reads[lt.index()];
            let slots: Vec<_> = test
                .load_slots()
                .into_iter()
                .filter(|s| s.thread == *lt)
                .collect();
            for i in 0..n as usize {
                for slot in &slots {
                    let val = run.frame_bufs[frame_pos][r_t * i + slot.slot];
                    if val == 0 {
                        continue;
                    }
                    let attributable = kmap
                        .assignments_for(slot.loc)
                        .iter()
                        .any(|asg| KMap::decode(asg.k, asg.a, val).is_some_and(|m| m < n));
                    assert!(
                        attributable,
                        "{}: unattributable value {val} at load slot {}",
                        test.name(),
                        slot.slot
                    );
                }
            }
        }
    });
}

#[test]
fn else_if_chains_count_at_most_one_outcome_per_frame() {
    let names = ["sb", "lb", "amd3", "podwr001", "iwp24"];
    run_cases(16, |g| {
        let test = suite::by_name(names[g.below(names.len())]).expect("suite test");
        let seed = g.u64();
        let conv = Conversion::convert(&test).expect("converts");
        let all = conv.all_outcomes(&test).expect("outcomes");
        let n = 60u64;
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();

        let req = CountRequest::new(&bufs, n);
        let exh: Vec<_> = all.iter().map(|(o, _)| o.clone()).collect();
        let re = ExhaustiveCounter::new(&exh).count(&req.with_frame_cap(Some(1_000_000)));
        assert!(re.total() <= re.frames_examined);

        let heu: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();
        let rh = HeuristicCounter::new(&heu).count(&req);
        assert!(rh.total() <= n);
    });
}

#[test]
fn traced_runs_are_bit_identical_to_untraced_runs() {
    let names = ["sb", "mp", "iriw"];
    run_cases(16, |g| {
        let test = suite::by_name(names[g.below(names.len())]).expect("suite test");
        let seed = g.u64();
        let conv = Conversion::convert(&test).expect("converts");
        let specs = perple_harness::perpetual::thread_specs(&conv.perpetual, 80);
        let mut m1 = perple_sim::Machine::new(SimConfig::default().with_seed(seed));
        let plain = m1.run(&specs, test.location_count());
        let mut m2 = perple_sim::Machine::new(SimConfig::default().with_seed(seed));
        let mut trace = perple_sim::Trace::with_capacity(64);
        let traced = m2.run_traced(&specs, test.location_count(), &mut trace);
        assert_eq!(plain, traced);
    });
}

#[test]
fn generated_tests_roundtrip_through_text() {
    run_cases(32, |g| {
        let family = generate::generate_family(4);
        let test = g.choose(&family);
        let text = printer::print(test);
        let back = parser::parse(&text).expect("generated test reparses");
        assert_eq!(test, &back);
    });
}

// ---------------------------------------------------------------------------
// Parallel-counter properties: random outcome sets, buffers, and worker
// counts must leave every counter bit-identical to its serial reference.
// ---------------------------------------------------------------------------

#[test]
fn parallel_counters_match_serial_for_arbitrary_worker_counts() {
    let names = ["sb", "mp", "amd3", "iwp24", "podwr001", "n5"];
    run_cases(24, |g| {
        let test = suite::by_name(names[g.below(names.len())]).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let all = conv.all_outcomes(&test).expect("outcomes");
        let exh: Vec<_> = all.iter().map(|(o, _)| o.clone()).collect();
        let heu: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();

        // Random buffers: garbage values are fine — the counters must be
        // sound on any input, and equality must hold regardless.
        let n = 1 + g.range_u64(0, 40);
        let reads = test.reads_per_thread();
        let bufs_owned: Vec<Vec<u64>> = test
            .load_threads()
            .iter()
            .map(|lt| {
                let want = reads[lt.index()] * n as usize;
                (0..want).map(|_| g.range_u64(0, 2 * n + 2)).collect()
            })
            .collect();
        let bufs: Vec<&[u64]> = bufs_owned.iter().map(Vec::as_slice).collect();

        let cap = match g.below(3) {
            0 => None,
            1 => Some(g.range_u64(0, frame_space(n, bufs.len()) + 2)),
            _ => Some(g.range_u64(0, 50)),
        };
        let workers = 1 + g.below(12);
        let serial = CountRequest::new(&bufs, n);
        let sharded = serial.with_workers(workers);

        let se = ExhaustiveCounter::new(&exh).count(&serial.with_frame_cap(cap));
        let pe = ExhaustiveCounter::new(&exh).count(&sharded.with_frame_cap(cap));
        assert_eq!(se.counts, pe.counts, "exhaustive counts, workers {workers}");
        assert_eq!(se.frames_examined, pe.frames_examined);
        assert_eq!(se.evals, pe.evals);
        assert_eq!(se.truncated, pe.truncated);

        let sh = HeuristicCounter::new(&heu).count(&serial);
        let ph = HeuristicCounter::new(&heu).count(&sharded);
        assert_eq!(sh.counts, ph.counts, "heuristic counts, workers {workers}");
        assert_eq!(sh.evals, ph.evals);

        let sa = HeuristicCounter::each(&heu).count(&serial);
        let pa = HeuristicCounter::each(&heu).count(&sharded);
        assert_eq!(sa.counts, pa.counts, "each counts, workers {workers}");
        assert_eq!(sa.evals, pa.evals);

        // Σ counts ≤ frames must survive the merge (else-if counters).
        assert!(pe.total() <= pe.frames_examined);
        assert!(ph.total() <= ph.frames_examined);
    });
}

#[test]
fn frame_seek_round_trips_against_the_serial_odometer() {
    run_cases(32, |g| {
        let n = 1 + g.range_u64(0, 9);
        let tl = 1 + g.below(3);
        let total = frame_space(n, tl);

        // The serial odometer, stepped from zero, must visit exactly
        // frame_at(0), frame_at(1), ... — and frame_index must invert.
        let mut frame = vec![0u64; tl];
        for index in 0..total.min(200) {
            assert_eq!(frame_at(index, n, tl), frame, "index {index} n {n} tl {tl}");
            assert_eq!(frame_index(&frame, n), index);
            let mut pos = tl;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                frame[pos] += 1;
                if frame[pos] < n {
                    break;
                }
                frame[pos] = 0;
            }
        }

        // Random mid-space probes round-trip too.
        for _ in 0..20 {
            let index = g.range_u64(0, total);
            assert_eq!(frame_index(&frame_at(index, n, tl), n), index);
        }
    });
}
