//! Property tests of the metrics registry's per-thread shard merge, on
//! the in-repo [`perple_repro::prop`] harness and against the **real**
//! process-global registry: however events are distributed over threads,
//! the merged snapshot must equal a serial reference — the merge is
//! associative and commutative addition, nothing more.
//!
//! Under `--features perple-obs/off` the registry compiles to no-ops and
//! every delta is zero; the properties assert that branch too, so the
//! same file passes in both build configurations.

use perple_obs::metrics::{self, bucket_lower_bound, bucket_of, Hist, Metric, HIST_BUCKETS};
use perple_repro::prop::run_cases;
use std::sync::Mutex;

/// The registry is process-global; recording tests serialize behind this
/// so one property's events never leak into another's delta.
fn gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn sharded_histogram_merge_equals_serial_bucketing() {
    let _g = gate();
    run_cases(24, |g| {
        // Random values with a bias toward small bit-lengths so every
        // bucket region gets traffic across cases.
        let len = g.below(200);
        let values: Vec<u64> = (0..len).map(|_| g.u64() >> g.below(64)).collect();
        let threads = 1 + g.below(6);

        let before = metrics::snapshot();
        std::thread::scope(|s| {
            for t in 0..threads {
                // Deterministic round-robin split of the value stream.
                let chunk: Vec<u64> = values.iter().copied().skip(t).step_by(threads).collect();
                s.spawn(move || {
                    for v in chunk {
                        metrics::observe(Hist::CountFramesPerCall, v);
                    }
                });
            }
        });
        let delta = metrics::snapshot().delta_from(&before);

        let mut expect = vec![0u64; HIST_BUCKETS];
        if metrics::enabled() {
            for &v in &values {
                expect[bucket_of(v)] += 1;
            }
        }
        let (_, got) = delta
            .hists
            .iter()
            .find(|(n, _)| *n == "count_frames_per_call")
            .expect("histogram present in snapshot");
        assert_eq!(
            got, &expect,
            "merge diverged from serial bucketing ({len} values, {threads} threads)"
        );
    });
}

#[test]
fn sharded_counter_merge_is_distribution_independent() {
    let _g = gate();
    run_cases(32, |g| {
        let deltas: Vec<u64> = (0..g.below(64)).map(|_| g.range_u64(0, 1_000)).collect();
        let threads = 1 + g.below(8);

        let before = metrics::snapshot();
        std::thread::scope(|s| {
            for t in 0..threads {
                let chunk: Vec<u64> = deltas.iter().copied().skip(t).step_by(threads).collect();
                s.spawn(move || {
                    for d in chunk {
                        metrics::add(Metric::SimStalls, d);
                    }
                });
            }
        });
        let after = metrics::snapshot();

        let expect: u64 = if metrics::enabled() {
            deltas.iter().sum()
        } else {
            0
        };
        assert_eq!(after.delta_from(&before).get("sim_stalls"), expect);
        // Snapshots are cumulative and monotone: no merge may lose events.
        assert!(after.get("sim_stalls") >= before.get("sim_stalls"));
    });
}

#[test]
fn bucketing_round_trips_for_arbitrary_values() {
    run_cases(64, |g| {
        let v = g.u64() >> g.below(64);
        let b = bucket_of(v);
        assert!(b < HIST_BUCKETS);
        let lo = bucket_lower_bound(b).expect("in-range bucket has a bound");
        assert!(lo <= v, "bucket lower bound exceeds its member: {lo} > {v}");
        if b + 1 < HIST_BUCKETS {
            let hi = bucket_lower_bound(b + 1).expect("next bucket bound");
            assert!(v < hi, "value {v} belongs below the next bound {hi}");
        }
        // Monotone: halving a value never raises its bucket.
        assert!(bucket_of(v / 2) <= b);
    });
}

#[test]
fn snapshot_render_and_delta_agree_on_totals() {
    let _g = gate();
    run_cases(16, |g| {
        let n = 1 + g.below(50) as u64;
        let before = metrics::snapshot();
        for i in 0..n {
            metrics::observe(Hist::ExecAttemptMicros, i * i);
        }
        let delta = metrics::snapshot().delta_from(&before);
        let expect = if metrics::enabled() { n } else { 0 };
        assert_eq!(delta.hist_total("exec_attempt_micros"), expect);
        if metrics::enabled() {
            assert!(delta.render_text().contains("exec_attempt_micros"));
        }
    });
}
