//! Determinism guarantees of the observability layer: arming the span
//! tracer and recording metrics must not change a single bit of the
//! analysis. The layer is write-only — no pipeline stage ever reads a
//! counter, histogram, or trace record back — so these tests pin the
//! invariant operationally: the same `(test, seed, N)` produces the same
//! run digest and counts whether observability is armed, disarmed, or
//! compiled out entirely (`--features perple-obs/off` runs this same
//! file and must see the same pinned digest).

use perple::obs;
use perple::{
    Conversion, CountRequest, Counter, ExhaustiveCounter, HeuristicCounter, PerpleRunner, SimConfig,
};
use perple_model::suite;
use std::sync::Mutex;

/// The tracer and registry are process-global; tests serialize behind
/// this so span/metric assertions are not polluted by a sibling test.
fn gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything deterministic the pipeline produces for one input.
#[derive(Debug, PartialEq, Eq)]
struct PipelineResult {
    digest: u64,
    heuristic: Vec<u64>,
    exhaustive: Vec<u64>,
    frames_examined: u64,
    evals: u64,
}

/// Full pipeline — convert, simulate, count (serial + sharded) — with no
/// wall-clock fields in the result.
fn run_pipeline(name: &str, seed: u64, n: u64) -> PipelineResult {
    let test = suite::by_name(name).expect("suite test");
    let conv = Conversion::convert(&test).expect("converts");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
    let run = runner.run(&conv.perpetual, n);
    let bufs = run.bufs();
    let req = CountRequest::new(&bufs, n).with_workers(2);
    let h = HeuristicCounter::single(&conv.target_heuristic).count(&req);
    let x = ExhaustiveCounter::single(&conv.target_exhaustive)
        .count(&req.with_frame_cap(Some(100_000)));
    PipelineResult {
        digest: run.content_digest(),
        heuristic: h.counts,
        exhaustive: x.counts,
        frames_examined: x.frames_examined,
        evals: h.evals + x.evals,
    }
}

#[test]
fn traced_pipelines_are_bit_identical_to_untraced() {
    let _g = gate();
    for name in ["sb", "mp", "podwr001"] {
        let plain = run_pipeline(name, 0x0B5_C0DE, 200);

        obs::trace::start();
        let traced = run_pipeline(name, 0x0B5_C0DE, 200);
        let trace = obs::trace::finish();

        assert_eq!(plain, traced, "{name}: tracing changed the pipeline");
        if obs::metrics::enabled() {
            // The compiled-in tracer must have seen every stage.
            let seen: Vec<_> = trace.spans.iter().map(|s| s.name).collect();
            for stage in ["convert", "simulate", "count"] {
                assert!(seen.contains(&stage), "{name}: missing span {stage}");
            }
        } else {
            assert!(trace.is_empty(), "off build must record nothing");
        }
    }
}

#[test]
fn runtime_disabled_metrics_do_not_change_the_pipeline() {
    let _g = gate();
    let on = run_pipeline("iwp24", 0xFEED, 150);
    obs::metrics::set_enabled(false);
    let off = run_pipeline("iwp24", 0xFEED, 150);
    obs::metrics::set_enabled(true);
    assert_eq!(on, off, "runtime metrics toggle changed the pipeline");
}

/// The cross-feature anchor: this digest was computed once and must be
/// reproduced by **every** build configuration — default, `--release`,
/// and `--features perple-obs/off` (CI runs this test in both feature
/// configs). If observability ever feeds back into simulation or
/// counting, one of the configs diverges and this fails.
#[test]
fn pipeline_digest_is_pinned_across_obs_feature_configs() {
    let _g = gate();
    let before = obs::metrics::snapshot();
    let r = run_pipeline("sb", 0xD16_E57, 300);
    let delta = obs::metrics::snapshot().delta_from(&before);

    assert_eq!(
        r.digest, GOLDEN_SB_DIGEST,
        "sb digest drifted (seed 0xD16E57, N=300): got {:#x}",
        r.digest
    );
    assert_eq!(r.frames_examined, 90_000, "sb frame space is N^2");

    // The same run *was* observed (when compiled in): the write-only
    // layer sees the pipeline without perturbing it.
    if obs::metrics::enabled() {
        assert!(delta.get("sim_runs") >= 1);
        assert!(delta.get("sim_store_buffer_flushes") > 0);
        assert!(delta.get("count_frames_examined") >= 90_000);
    } else {
        assert_eq!(delta.get("sim_runs"), 0);
    }
}

/// Computed from the seed pipeline; see
/// `pipeline_digest_is_pinned_across_obs_feature_configs`.
const GOLDEN_SB_DIGEST: u64 = 0x7fe9_6306_3f1b_9576;
