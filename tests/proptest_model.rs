//! Property-based tests over randomly generated litmus tests: parser
//! round-trips, SC ⊆ TSO, axiomatic/operational agreement, and the central
//! soundness property — TSO-forbidden targets never fire on the TSO
//! substrate. Runs on the in-repo [`perple_repro::prop`] harness.

use perple::{
    classify, enumerate, Conversion, CountRequest, Counter, ExhaustiveCounter, HeuristicCounter,
    MemoryModel, PerpleRunner, SimConfig,
};
use perple_model::{parser, printer, LitmusTest, TestBuilder};
use perple_repro::prop::{run_cases, Gen};

/// One abstract instruction of the generator.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Store { loc: u8 },
    Load { reg: u8, loc: u8 },
    Mfence,
}

/// Weighted draw matching the old strategy: stores 3, loads 4, fences 1.
fn gen_op(g: &mut Gen) -> GenOp {
    match g.below(8) {
        0..=2 => GenOp::Store {
            loc: g.below(2) as u8,
        },
        3..=6 => GenOp::Load {
            reg: g.below(2) as u8,
            loc: g.below(2) as u8,
        },
        _ => GenOp::Mfence,
    }
}

/// A random well-formed litmus test: 2–3 threads, 1–3 ops each, ≤2
/// locations, stored values unique per location (so it is convertible
/// whenever its condition is register-only), plus a register condition over
/// genuinely loaded registers. Returns `None` when the draw has no loads to
/// condition on (the caller redraws, mirroring proptest's filter).
fn gen_test(g: &mut Gen) -> Option<LitmusTest> {
    let nthreads = 2 + g.below(2);
    let threads: Vec<Vec<GenOp>> = (0..nthreads)
        .map(|_| (0..1 + g.below(3)).map(|_| gen_op(g)).collect())
        .collect();

    let mut b = TestBuilder::new("gen");
    let mut next_value = [0u32; 2];
    let mut loaded: Vec<(usize, String)> = Vec::new();
    let loc_name = |l: u8| if l == 0 { "x" } else { "y" };
    for (t, ops) in threads.iter().enumerate() {
        let mut tb = b.thread();
        for op in ops {
            match *op {
                GenOp::Store { loc } => {
                    next_value[loc as usize] += 1;
                    tb.store(loc_name(loc), next_value[loc as usize]);
                }
                GenOp::Load { reg, loc } => {
                    let reg_name = if reg == 0 { "EAX" } else { "EBX" };
                    tb.load(reg_name, loc_name(loc));
                    loaded.push((t, reg_name.to_owned()));
                }
                GenOp::Mfence => {
                    tb.mfence();
                }
            }
        }
    }
    if loaded.is_empty() {
        return None;
    }
    loaded.sort();
    loaded.dedup();
    // Derive a condition over up to two loaded registers.
    let natoms = 1 + g.below(loaded.len().min(2));
    for i in 0..natoms {
        let (t, reg) = &loaded[(g.below(loaded.len()) + i) % loaded.len()];
        b.reg_cond(*t, reg.clone(), g.below(3) as u32);
    }
    b.build().ok()
}

/// Redraws until the generator yields a well-formed test (the filter
/// rejects a bounded fraction of draws, so this terminates quickly).
fn next_test(g: &mut Gen) -> LitmusTest {
    loop {
        if let Some(t) = gen_test(g) {
            return t;
        }
    }
}

#[test]
fn printed_tests_reparse_identically() {
    run_cases(48, |g| {
        let test = next_test(g);
        let text = printer::print(&test);
        let back = parser::parse(&text).expect("printed test reparses");
        assert_eq!(test, back);
    });
}

#[test]
fn sc_outcomes_are_a_subset_of_tso() {
    run_cases(48, |g| {
        let test = next_test(g);
        let sc = enumerate(&test, MemoryModel::Sc);
        let tso = enumerate(&test, MemoryModel::Tso);
        assert!(sc.register_outcomes().is_subset(&tso.register_outcomes()));
    });
}

#[test]
fn axiomatic_sc_agrees_with_operational_sc() {
    run_cases(48, |g| {
        let test = next_test(g);
        let reachable = enumerate(&test, MemoryModel::Sc).register_outcomes();
        for outcome in test.possible_outcomes() {
            if let Ok(axiomatic) = perple_model::hb::is_sc_consistent(&test, &outcome) {
                assert_eq!(axiomatic, reachable.contains(&outcome), "outcome {outcome}");
            }
        }
    });
}

#[test]
fn forbidden_targets_never_fire_on_the_tso_substrate() {
    // The central soundness property, over arbitrary programs: if the
    // operational TSO model forbids the condition, no perpetual run may
    // count it.
    run_cases(48, |g| {
        let test = next_test(g);
        let Ok(conv) = Conversion::convert(&test) else {
            return;
        };
        let class = classify(&test);
        if class.tso_allowed {
            return;
        }
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xF0B1D));
        let run = runner.run(&conv.perpetual, 150);
        let bufs = run.bufs();
        let count =
            HeuristicCounter::single(&conv.target_heuristic).count(&CountRequest::new(&bufs, 150));
        assert_eq!(count.counts[0], 0, "forbidden target fired");
    });
}

#[test]
fn heuristic_counts_never_exceed_exhaustive_per_outcome() {
    run_cases(48, |g| {
        let test = next_test(g);
        let Ok(conv) = Conversion::convert(&test) else {
            return;
        };
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(77));
        let n = 120u64;
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        let h = HeuristicCounter::single(&conv.target_heuristic).count(&req);
        let x = ExhaustiveCounter::single(&conv.target_exhaustive).count(&req);
        assert!(h.counts[0] <= x.counts[0]);
    });
}
