//! Property-based tests over randomly generated litmus tests: parser
//! round-trips, SC ⊆ TSO, axiomatic/operational agreement, and the central
//! soundness property — TSO-forbidden targets never fire on the TSO
//! substrate.

use proptest::prelude::*;

use perple::{classify, count_heuristic, enumerate, Conversion, MemoryModel, PerpleRunner, SimConfig};
use perple_model::{parser, printer, LitmusTest, TestBuilder};

/// One abstract instruction of the generator.
#[derive(Debug, Clone)]
enum GenOp {
    Store { loc: u8 },
    Load { reg: u8, loc: u8 },
    Mfence,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        3 => (0..2u8).prop_map(|loc| GenOp::Store { loc }),
        4 => (0..2u8, 0..2u8).prop_map(|(reg, loc)| GenOp::Load { reg, loc }),
        1 => Just(GenOp::Mfence),
    ]
}

/// A random well-formed litmus test: 2–3 threads, 1–3 ops each, ≤2
/// locations, stored values unique per location (so it is convertible
/// whenever its condition is register-only), plus a register condition over
/// genuinely loaded registers.
fn gen_test() -> impl Strategy<Value = LitmusTest> {
    let thread = prop::collection::vec(gen_op(), 1..=3);
    (prop::collection::vec(thread, 2..=3), any::<u64>()).prop_filter_map(
        "needs loads for a condition",
        |(threads, cond_seed)| {
            let mut b = TestBuilder::new("gen");
            let mut next_value = [0u32; 2];
            let mut loaded: Vec<(usize, String)> = Vec::new();
            let loc_name = |l: u8| if l == 0 { "x" } else { "y" };
            for (t, ops) in threads.iter().enumerate() {
                let mut tb = b.thread();
                for op in ops {
                    match *op {
                        GenOp::Store { loc } => {
                            next_value[loc as usize] += 1;
                            tb.store(loc_name(loc), next_value[loc as usize]);
                        }
                        GenOp::Load { reg, loc } => {
                            let reg_name = if reg == 0 { "EAX" } else { "EBX" };
                            tb.load(reg_name, loc_name(loc));
                            loaded.push((t, reg_name.to_owned()));
                        }
                        GenOp::Mfence => {
                            tb.mfence();
                        }
                    }
                }
            }
            if loaded.is_empty() {
                return None;
            }
            loaded.sort();
            loaded.dedup();
            // Derive a condition over up to two loaded registers.
            let mut seed = cond_seed;
            let mut pick = |max: usize| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                (seed >> 33) as usize % max
            };
            let natoms = 1 + pick(loaded.len().min(2));
            for i in 0..natoms {
                let (t, reg) = &loaded[(pick(loaded.len()) + i) % loaded.len()];
                b.reg_cond(*t, reg.clone(), pick(3) as u32);
            }
            b.build().ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn printed_tests_reparse_identically(test in gen_test()) {
        let text = printer::print(&test);
        let back = parser::parse(&text).expect("printed test reparses");
        prop_assert_eq!(test, back);
    }

    #[test]
    fn sc_outcomes_are_a_subset_of_tso(test in gen_test()) {
        let sc = enumerate(&test, MemoryModel::Sc);
        let tso = enumerate(&test, MemoryModel::Tso);
        prop_assert!(sc.register_outcomes().is_subset(&tso.register_outcomes()));
    }

    #[test]
    fn axiomatic_sc_agrees_with_operational_sc(test in gen_test()) {
        let reachable = enumerate(&test, MemoryModel::Sc).register_outcomes();
        for outcome in test.possible_outcomes() {
            if let Ok(axiomatic) = perple_model::hb::is_sc_consistent(&test, &outcome) {
                prop_assert_eq!(
                    axiomatic,
                    reachable.contains(&outcome),
                    "outcome {}", outcome
                );
            }
        }
    }

    #[test]
    fn forbidden_targets_never_fire_on_the_tso_substrate(test in gen_test()) {
        // The central soundness property, over arbitrary programs: if the
        // operational TSO model forbids the condition, no perpetual run may
        // count it.
        let Ok(conv) = Conversion::convert(&test) else { return Ok(()) };
        let class = classify(&test);
        if class.tso_allowed {
            return Ok(());
        }
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xF0B1D));
        let run = runner.run(&conv.perpetual, 150);
        let bufs = run.bufs();
        let count = count_heuristic(
            std::slice::from_ref(&conv.target_heuristic),
            &bufs,
            150,
        );
        prop_assert_eq!(count.counts[0], 0, "forbidden target fired");
    }

    #[test]
    fn heuristic_counts_never_exceed_exhaustive_per_outcome(test in gen_test()) {
        let Ok(conv) = Conversion::convert(&test) else { return Ok(()) };
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(77));
        let n = 120u64;
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let h = count_heuristic(
            std::slice::from_ref(&conv.target_heuristic), &bufs, n);
        let x = perple::count_exhaustive(
            std::slice::from_ref(&conv.target_exhaustive), &bufs, n, None);
        prop_assert!(h.counts[0] <= x.counts[0]);
    }
}
