//! The committed `corpus/` directory (litmus7-format files of the whole
//! 88-test suite) must stay in sync with the built-in definitions.
//! Regenerate with `cargo run --release -p perple-bench --bin mkcorpus`.

use std::path::Path;

use perple_model::suite;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn committed_corpus_matches_the_builtin_suite() {
    let dir = corpus_dir();
    assert!(dir.is_dir(), "corpus/ missing; run the mkcorpus binary");
    let loaded = suite::load_corpus(&dir).expect("corpus parses");
    assert_eq!(loaded.len(), 88);

    let mut original = suite::full();
    original.sort_by(|a, b| a.name().cmp(b.name()));
    let mut back = loaded;
    back.sort_by(|a, b| a.name().cmp(b.name()));
    assert_eq!(original, back, "corpus drifted from the built-in suite");
}

#[test]
fn corpus_files_are_self_describing() {
    // Each file's name matches the test name inside it.
    let dir = corpus_dir();
    for entry in std::fs::read_dir(&dir).expect("corpus readable") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "litmus") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable");
        let test = perple_model::parser::parse(&src).expect("parses");
        let stem = path.file_stem().expect("stem").to_string_lossy();
        assert_eq!(test.name(), stem, "{}", path.display());
    }
}
