//! Failure-injection and garbage-tolerance tests: the counters must stay
//! sound (and panic-free) when fed buffers that no honest run could
//! produce, and the pipeline must catch machines that lie about their
//! memory model.

use perple::experiments::resilient::{audit_one, resilient_audit};
use perple::experiments::ExperimentConfig;
use perple::{
    classify, Budget, Conversion, CountRequest, Counter, ExhaustiveCounter, FaultPlan,
    HeuristicCounter, PerpleRunner, SimConfig,
};
use perple_model::suite;
use perple_repro::prop::run_cases;

/// Counters accept arbitrary buffer *contents* (values from the future,
/// wrong residues, huge numbers) without panicking, as long as buffer
/// shapes are right.
#[test]
fn counters_never_panic_on_garbage_buffers() {
    let names = ["sb", "mp", "iwp24", "n5", "podwr001", "co-iriw"];
    run_cases(48, |g| {
        let test = suite::by_name(names[g.below(names.len())]).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let raw_len = g.below(200);
        let raw = g.vec_u64(raw_len);
        let reads = test.reads_per_thread();
        // Shape the raw values into per-thread buffers for N iterations.
        let n = 10u64;
        let mut bufs_owned: Vec<Vec<u64>> = Vec::new();
        let mut cursor = 0usize;
        for lt in test.load_threads() {
            let want = reads[lt.index()] * n as usize;
            let mut b = Vec::with_capacity(want);
            for i in 0..want {
                b.push(
                    raw.get((cursor + i) % raw.len().max(1))
                        .copied()
                        .unwrap_or(0),
                );
            }
            cursor += want;
            bufs_owned.push(b);
        }
        let bufs: Vec<&[u64]> = bufs_owned.iter().map(Vec::as_slice).collect();
        let req = CountRequest::new(&bufs, n);
        let h = HeuristicCounter::single(&conv.target_heuristic).count(&req);
        let x = ExhaustiveCounter::single(&conv.target_exhaustive)
            .count(&req.with_frame_cap(Some(10_000)));
        assert!(h.counts[0] <= n);
        assert!(x.counts[0] <= x.frames_examined);
    });
}

/// A machine that reorders stores (PSO) while claiming TSO is caught by
/// the audit across every exposable test, and the evidence scales with
/// iterations.
#[test]
fn weak_machine_detection_scales_with_iterations() {
    let mp = suite::mp();
    let conv = Conversion::convert(&mp).expect("converts");
    let mut hits_at = Vec::new();
    for n in [500u64, 2_000, 8_000] {
        let mut runner = PerpleRunner::new(
            SimConfig::default()
                .with_seed(0xFA11)
                .with_weak_store_order(true),
        );
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let hits = HeuristicCounter::single(&conv.target_heuristic)
            .count(&CountRequest::new(&bufs, n))
            .counts[0];
        hits_at.push(hits);
    }
    assert!(
        hits_at[0] > 0,
        "violation must be visible at 500 iterations"
    );
    assert!(
        hits_at[2] > hits_at[0],
        "evidence must grow with iterations: {hits_at:?}"
    );
}

/// Mixed fleet: only the weak machine trips the audit; the conformant
/// machine stays clean on the same seeds.
#[test]
fn conformant_and_faulty_machines_are_distinguished() {
    for (weak, expect_violation) in [(false, false), (true, true)] {
        let mut any_violation = false;
        for test in suite::convertible() {
            let class = classify(&test);
            if class.tso_allowed {
                continue;
            }
            let conv = Conversion::convert(&test).expect("converts");
            let mut runner = PerpleRunner::new(
                SimConfig::default()
                    .with_seed(0xD15)
                    .with_weak_store_order(weak),
            );
            let run = runner.run(&conv.perpetual, 3_000);
            let bufs = run.bufs();
            let hits = HeuristicCounter::single(&conv.target_heuristic)
                .count(&CountRequest::new(&bufs, 3_000))
                .counts[0];
            if hits > 0 {
                any_violation = true;
            }
        }
        assert_eq!(
            any_violation, expect_violation,
            "weak={weak}: audit verdict wrong"
        );
    }
}

/// Every machine fault kind either shows up in the audit row (faults
/// counted, counters still sound) or lands in quarantine as a classified
/// error — never a crash.
#[test]
fn every_fault_kind_is_detected_or_quarantined() {
    // (plan, test): reorder needs a thread with two buffered stores per
    // iteration, which mp's store thread provides.
    let cases = [
        ("drop@t0:0..400", "sb"),
        ("corrupt@*:0..400", "sb"),
        ("stuck@*:0..400:p0.2:c40", "sb"),
        ("reorder@t0:0..400", "mp"),
    ];
    for (plan, name) in cases {
        let cfg = ExperimentConfig::default()
            .with_iterations(400)
            .with_seed(0xFA57)
            .with_fault_plan(FaultPlan::parse(plan).expect("plan parses"));
        let test = suite::by_name(name).expect("suite test");
        match audit_one(&test, &cfg, 0xFA57) {
            Ok(row) => {
                assert!(
                    row.faults > 0,
                    "{plan}: a whole-run plan must fire on {name}"
                );
                assert!(row.heuristic <= row.iterations, "{plan}: counter soundness");
            }
            Err(e) => {
                // Quarantine path: the failure is classified, not a crash.
                assert!(
                    matches!(e.kind(), "timeout" | "panic"),
                    "{plan}: unexpected error class {e}"
                );
            }
        }
    }
}

/// Arbitrary generated fault plans never panic the pipeline, and the
/// counters stay within their invariants on whatever the faulty machine
/// produced.
#[test]
fn random_fault_plans_never_crash_the_pipeline() {
    let kinds = ["drop", "corrupt", "stuck", "reorder"];
    let names = ["sb", "mp", "amd3", "iwp24"];
    run_cases(32, |g| {
        let n = 200u64;
        let clauses: Vec<String> = (0..1 + g.below(3))
            .map(|_| {
                let kind = *g.choose(&kinds);
                let thread = if g.chance(1, 2) {
                    "*".to_owned()
                } else {
                    format!("t{}", g.below(3))
                };
                let from = g.below(n as usize) as u64;
                let to = from + 1 + g.below(n as usize) as u64;
                let prob = g.below(101) as f64 / 100.0;
                // Bound stuck stalls so a p=1 plan cannot outlive the test.
                format!("{kind}@{thread}:{from}..{to}:p{prob}:c{}", 1 + g.below(60))
            })
            .collect();
        let plan = FaultPlan::parse(&clauses.join(",")).expect("generated plan parses");
        let test = suite::by_name(names[g.below(names.len())]).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let mut runner = PerpleRunner::new(
            SimConfig::default()
                .with_seed(g.u64())
                .with_fault_plan(plan),
        );
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        let h = HeuristicCounter::single(&conv.target_heuristic).count(&req);
        assert!(h.counts[0] <= n);
        let x = ExhaustiveCounter::single(&conv.target_exhaustive)
            .count(&req.with_frame_cap(Some(10_000)));
        assert!(x.counts[0] <= x.frames_examined);
    });
}

/// A hostile plan that stalls every thread for ~a billion cycles sends
/// tests to quarantine (classified as timeouts) instead of hanging or
/// crashing the suite, and the report stays index-aligned.
#[test]
fn livelocked_tests_are_quarantined_not_fatal() {
    let plan = FaultPlan::parse("stuck@*:0..1:c1000000000").expect("plan parses");
    let cfg = ExperimentConfig::default()
        .with_iterations(500)
        .with_seed(0xDEAD)
        .with_timeout_ms(Some(30))
        .with_retries(1)
        .with_fault_plan(plan);
    let report = resilient_audit(&cfg);
    assert_eq!(report.results.len(), suite::convertible().len());
    assert_eq!(report.results.len(), report.items.len());
    let quarantined = report.quarantined();
    assert!(
        !quarantined.is_empty(),
        "the stall must defeat at least one test"
    );
    for item in quarantined {
        assert_eq!(item.fault_kind(), Some("timeout"), "{}", item.name);
        assert_eq!(item.attempts.len(), 2, "{}: one retry permitted", item.name);
    }
}

/// Watchdog truncation is a pure prefix: a budget-cut run is bit-identical
/// to the head of the full run, and budgeted heuristic counts equal a
/// serial recount of exactly the scanned pivots.
#[test]
fn watchdog_truncated_counts_are_a_prefix_of_untruncated() {
    let names = ["sb", "amd3", "iwp24", "podwr001"];
    run_cases(24, |g| {
        let test = suite::by_name(names[g.below(names.len())]).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let n = 100 + g.below(200) as u64;
        let seed = g.u64();
        let mut full_runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let full = full_runner.run(&conv.perpetual, n);
        let polls = 1 + g.below(64) as u64;
        let mut cut_runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let cut = cut_runner.run_budgeted(&conv.perpetual, n, &Budget::with_poll_limit(polls));
        assert!(cut.iterations <= n);
        let fb = full.bufs();
        for (c, f) in cut.bufs().iter().zip(&fb) {
            assert_eq!(*c, &f[..c.len()], "budget-cut buffers must be a prefix");
        }
        // Counter level: partial counts are exactly the scanned prefix.
        let budget = Budget::with_poll_limit(1 + g.below(n as usize) as u64);
        let part = HeuristicCounter::single(&conv.target_heuristic)
            .count(&CountRequest::new(&fb, n).with_budget(&budget));
        assert!(part.frames_examined <= n);
        let mut prefix = 0u64;
        for i in 0..part.frames_examined {
            if conv.target_heuristic.eval(i, &fb, n) {
                prefix += 1;
            }
        }
        assert_eq!(
            part.counts[0], prefix,
            "partial counts must match their prefix"
        );
    });
}

/// The native runner also refuses to fabricate violations: real x86 is
/// TSO, so forbidden targets stay silent there too (any hit would be a
/// soundness bug in conversion or counting).
#[test]
fn native_substrate_is_clean_for_fenced_tests() {
    for name in ["amd5", "mp+fences", "safe022"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let n = 2_000u64;
        let run = perple::native::run_perpetual(&conv.perpetual, n);
        let bufs = run.bufs();
        let hits = HeuristicCounter::single(&conv.target_heuristic)
            .count(&CountRequest::new(&bufs, n))
            .counts[0];
        assert_eq!(hits, 0, "{name}: native false positive");
    }
}
