//! Failure-injection and garbage-tolerance tests: the counters must stay
//! sound (and panic-free) when fed buffers that no honest run could
//! produce, and the pipeline must catch machines that lie about their
//! memory model.

use perple::{
    classify, count_exhaustive, count_heuristic, Conversion, PerpleRunner, SimConfig,
};
use perple_model::suite;
use perple_repro::prop::run_cases;

/// Counters accept arbitrary buffer *contents* (values from the future,
/// wrong residues, huge numbers) without panicking, as long as buffer
/// shapes are right.
#[test]
fn counters_never_panic_on_garbage_buffers() {
    let names = ["sb", "mp", "iwp24", "n5", "podwr001", "co-iriw"];
    run_cases(48, |g| {
        let test = suite::by_name(*g.choose(&names)).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let raw_len = g.below(200);
        let raw = g.vec_u64(raw_len);
        let reads = test.reads_per_thread();
        // Shape the raw values into per-thread buffers for N iterations.
        let n = 10u64;
        let mut bufs_owned: Vec<Vec<u64>> = Vec::new();
        let mut cursor = 0usize;
        for lt in test.load_threads() {
            let want = reads[lt.index()] * n as usize;
            let mut b = Vec::with_capacity(want);
            for i in 0..want {
                b.push(raw.get((cursor + i) % raw.len().max(1)).copied().unwrap_or(0));
            }
            cursor += want;
            bufs_owned.push(b);
        }
        let bufs: Vec<&[u64]> = bufs_owned.iter().map(Vec::as_slice).collect();
        let h = count_heuristic(std::slice::from_ref(&conv.target_heuristic), &bufs, n);
        let x = count_exhaustive(
            std::slice::from_ref(&conv.target_exhaustive), &bufs, n, Some(10_000));
        assert!(h.counts[0] <= n);
        assert!(x.counts[0] <= x.frames_examined);
    });
}

/// A machine that reorders stores (PSO) while claiming TSO is caught by
/// the audit across every exposable test, and the evidence scales with
/// iterations.
#[test]
fn weak_machine_detection_scales_with_iterations() {
    let mp = suite::mp();
    let conv = Conversion::convert(&mp).expect("converts");
    let mut hits_at = Vec::new();
    for n in [500u64, 2_000, 8_000] {
        let mut runner = PerpleRunner::new(
            SimConfig::default().with_seed(0xFA11).with_weak_store_order(true),
        );
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let hits =
            count_heuristic(std::slice::from_ref(&conv.target_heuristic), &bufs, n).counts[0];
        hits_at.push(hits);
    }
    assert!(hits_at[0] > 0, "violation must be visible at 500 iterations");
    assert!(
        hits_at[2] > hits_at[0],
        "evidence must grow with iterations: {hits_at:?}"
    );
}

/// Mixed fleet: only the weak machine trips the audit; the conformant
/// machine stays clean on the same seeds.
#[test]
fn conformant_and_faulty_machines_are_distinguished() {
    for (weak, expect_violation) in [(false, false), (true, true)] {
        let mut any_violation = false;
        for test in suite::convertible() {
            let class = classify(&test);
            if class.tso_allowed {
                continue;
            }
            let conv = Conversion::convert(&test).expect("converts");
            let mut runner = PerpleRunner::new(
                SimConfig::default().with_seed(0xD15).with_weak_store_order(weak),
            );
            let run = runner.run(&conv.perpetual, 3_000);
            let bufs = run.bufs();
            let hits = count_heuristic(
                std::slice::from_ref(&conv.target_heuristic),
                &bufs,
                3_000,
            )
            .counts[0];
            if hits > 0 {
                any_violation = true;
            }
        }
        assert_eq!(
            any_violation, expect_violation,
            "weak={weak}: audit verdict wrong"
        );
    }
}

/// The native runner also refuses to fabricate violations: real x86 is
/// TSO, so forbidden targets stay silent there too (any hit would be a
/// soundness bug in conversion or counting).
#[test]
fn native_substrate_is_clean_for_fenced_tests() {
    for name in ["amd5", "mp+fences", "safe022"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let n = 2_000u64;
        let run = perple::native::run_perpetual(&conv.perpetual, n);
        let bufs = run.bufs();
        let hits =
            count_heuristic(std::slice::from_ref(&conv.target_heuristic), &bufs, n).counts[0];
        assert_eq!(hits, 0, "{name}: native false positive");
    }
}
