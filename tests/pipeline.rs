//! End-to-end integration: text → parse → convert → run → count → classify,
//! exercising every crate of the workspace together.

use perple::{
    classify, Conversion, CountRequest, Counter, HeuristicCounter, Perple, PerpleRunner, SimConfig,
};
use perple_model::{parser, printer, suite};

#[test]
fn text_to_counts_pipeline() {
    // Start from litmus7 text, as a user would.
    let src = r#"
X86 sb-from-text
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [y],$1  ;
 MOV EAX,[y] | MOV EAX,[x] ;
exists (0:EAX=0 /\ 1:EAX=0)
"#;
    let test = parser::parse(src).expect("parses");
    assert_eq!(test.name(), "sb-from-text");

    // The classifier (herd substitute) marks the target TSO-only.
    let class = classify(&test);
    assert!(class.is_target());

    // Convert and run perpetually; the target must be observable.
    let mut engine =
        Perple::with_config(&test, SimConfig::default().with_seed(0xE2E)).expect("converts");
    let result = engine.run(3_000);
    assert!(result.target_heuristic.counts[0] > 0);
    assert!(result.target_exhaustive.counts[0] >= result.target_heuristic.counts[0]);

    // Round-trip the text form.
    let reparsed = parser::parse(&printer::print(&test)).expect("round-trips");
    assert_eq!(test, reparsed);
}

#[test]
fn every_convertible_suite_test_flows_end_to_end() {
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("suite test converts");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x1234));
        let run = runner.run(&conv.perpetual, 300);
        let bufs = run.bufs();
        let count =
            HeuristicCounter::single(&conv.target_heuristic).count(&CountRequest::new(&bufs, 300));
        // Soundness on the TSO substrate: forbidden targets never fire.
        let class = classify(&test);
        if !class.tso_allowed {
            assert_eq!(count.counts[0], 0, "{}: false positive", test.name());
        }
    }
}

#[test]
fn full_suite_split_is_34_54_and_only_convertible_run_perpetually() {
    let mut converted = 0;
    let mut rejected = 0;
    for test in suite::full() {
        match Conversion::convert(&test) {
            Ok(conv) => {
                converted += 1;
                assert_eq!(conv.perpetual.thread_count(), test.thread_count());
            }
            Err(perple::ConvertError::MemoryCondition) => rejected += 1,
            Err(e) => panic!("{}: unexpected conversion error {e}", test.name()),
        }
    }
    assert_eq!((converted, rejected), (34, 54));
}

#[test]
fn classification_is_consistent_between_axiomatic_and_operational_views() {
    // For every convertible test: the hb-graph SC check on the target's
    // completions agrees with the operational enumerator's SC verdict.
    for test in suite::convertible() {
        let class = classify(&test);
        let completions = test.outcomes_matching_condition();
        let any_sc = completions
            .iter()
            .filter_map(|o| perple_model::hb::is_sc_consistent(&test, o).ok())
            .any(|b| b);
        assert_eq!(any_sc, class.sc_allowed, "{}", test.name());
    }
}
