//! Integration of the diy-style cycle generator with the full pipeline:
//! generated tests classify correctly, convert when register-only, and
//! never produce false positives on the TSO substrate.

use perple::{
    classify, enumerate, Conversion, CountRequest, Counter, ExhaustiveCounter, HeuristicCounter,
    MemoryModel, PerpleRunner, SimConfig,
};
use perple_model::generate::{from_cycle, generate_family, CycleEdge::*, Dir::*};

#[test]
fn generated_classics_classify_like_their_handwritten_twins() {
    // (cycle, handwritten twin, expected tso_allowed)
    let cases = [
        (vec![Pod(W, R), Fre, Pod(W, R), Fre], "sb", true),
        (vec![Pod(R, W), Rfe, Pod(R, W), Rfe], "lb", false),
        (vec![Pod(W, W), Rfe, Pod(R, R), Fre], "mp", false),
        (
            vec![Rfe, Pod(R, R), Fre, Rfe, Pod(R, R), Fre],
            "iriw",
            false,
        ),
    ];
    for (cycle, twin, expect_tso) in cases {
        let gen = from_cycle(&format!("gen-{twin}"), &cycle).unwrap();
        let c = classify(&gen);
        assert_eq!(c.tso_allowed, expect_tso, "gen-{twin}");
        assert!(
            !c.sc_allowed,
            "gen-{twin}: critical cycles are SC-forbidden"
        );
        // The handwritten twin agrees.
        let hand = perple_model::suite::by_name(twin).unwrap();
        let hc = classify(&hand);
        assert_eq!(c.tso_allowed, hc.tso_allowed, "{twin}");
    }
}

#[test]
fn whole_generated_family_is_sc_forbidden() {
    // The generator's defining invariant, checked operationally this time.
    for test in generate_family(4) {
        let sc = enumerate(&test, MemoryModel::Sc);
        assert!(
            !sc.condition_reachable(&test),
            "{}: generated condition is SC-reachable",
            test.name()
        );
    }
}

#[test]
fn generated_family_produces_no_false_positives_perpetually() {
    for test in generate_family(4) {
        let Ok(conv) = Conversion::convert(&test) else {
            continue;
        };
        let class = classify(&test);
        if class.tso_allowed {
            continue;
        }
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x6E4));
        let run = runner.run(&conv.perpetual, 200);
        let bufs = run.bufs();
        let count =
            HeuristicCounter::single(&conv.target_heuristic).count(&CountRequest::new(&bufs, 200));
        assert_eq!(count.counts[0], 0, "{}: false positive", test.name());
    }
}

#[test]
fn generated_tso_allowed_targets_are_observable() {
    // Every generated TSO-only target should eventually fire on the
    // simulator — use the exhaustive counter for sensitivity at small N.
    let mut observable = 0;
    let mut total = 0;
    for test in generate_family(4) {
        let Ok(conv) = Conversion::convert(&test) else {
            continue;
        };
        if !classify(&test).is_target() {
            continue;
        }
        total += 1;
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x0B5));
        let n = 800u64;
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let count = ExhaustiveCounter::single(&conv.target_exhaustive)
            .count(&CountRequest::new(&bufs, n).with_frame_cap(Some(5_000_000)));
        if count.counts[0] > 0 {
            observable += 1;
        }
    }
    assert!(total > 0, "family must contain TSO-only targets");
    assert_eq!(
        observable, total,
        "some TSO-allowed generated targets never fired"
    );
}
