//! Integration of the native (real-thread) harness with the analysis
//! pipeline. Iteration counts are deliberately small: the host may be a
//! single-core machine where barrier rounds cost scheduling quanta.

use perple::native;
use perple::{skew, Conversion, CountRequest, Counter, HeuristicCounter, SyncMode};
use perple_model::suite;

#[test]
fn native_perpetual_feeds_the_counters() {
    let sb = suite::sb();
    let conv = Conversion::convert(&sb).expect("converts");
    let n = 2_000u64;
    let run = native::run_perpetual(&conv.perpetual, n);
    let bufs = run.bufs();
    let count =
        HeuristicCounter::single(&conv.target_heuristic).count(&CountRequest::new(&bufs, n));
    // On a single-core host the weak outcome may be absent; the counter
    // must still process the full run.
    assert_eq!(count.frames_examined, n);
}

#[test]
fn native_perpetual_feeds_the_skew_analysis() {
    let sb = suite::sb();
    let conv = Conversion::convert(&sb).expect("converts");
    let run = native::run_perpetual(&conv.perpetual, 3_000);
    let bufs = run.bufs();
    let samples = skew::skew_samples(&sb, &conv.kmap, &bufs);
    // After warm-up, nearly every iteration attributes its read.
    assert!(samples.len() > 1_000);
    let h = skew::skew_histogram(&samples);
    assert!(h.total() as usize == samples.len());
}

#[test]
fn native_forbidden_targets_stay_silent() {
    for name in ["mp", "amd5", "lb"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let n = 1_000u64;
        let run = native::run_perpetual(&conv.perpetual, n);
        let bufs = run.bufs();
        let count =
            HeuristicCounter::single(&conv.target_heuristic).count(&CountRequest::new(&bufs, n));
        assert_eq!(count.counts[0], 0, "{name}: forbidden target natively");
    }
}

#[test]
fn native_baseline_runs_every_mode_on_sb() {
    let sb = suite::sb();
    for mode in SyncMode::ALL {
        let run = native::run_baseline(&sb, mode, 40);
        let total: u64 = run.outcome_counts.values().sum();
        assert_eq!(total, 40, "{mode}");
    }
}
