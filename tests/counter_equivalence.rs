//! Differential proof obligations for the polynomial rf counter: across
//! the full convertible corpus, at every worker count, under fault
//! injection, over campaign-spec seed sets, and on adversarial random
//! buffers, [`RfCounter`] must be **bit-identical** to the exhaustive
//! reference — same counts, same flags — with the polynomial path (no
//! fallback) carrying every *target* outcome. Satellite property and
//! boundary suites live here too: random programs and schedules via
//! `perple_repro::prop`, `N = 1`, single-load-thread tests, the
//! `heuristic <= rf == exhaustive` ordering, and budget expiry yielding a
//! provable iteration prefix.

use perple::{
    Budget, Conversion, CountRequest, CountResult, Counter, ExhaustiveCounter, FaultPlan,
    HeuristicCounter, PerpleRunner, RfCounter, SimConfig,
};
use perple_model::suite;
use perple_repro::prop::run_cases;

const WORKERS: [usize; 4] = [1, 2, 3, 7];

/// The outcome sets of these tests contain multi-variable existential
/// outcomes outside the rf fragment (3-D dominance); their *targets* are
/// still polynomial, and the recorded fallback keeps the counts exact.
const FALLBACK_TESTS: [&str; 5] = ["co-iriw", "iriw", "rfi015", "safe012", "safe027"];

/// Counts with both exact backends and asserts bit-equality of every
/// semantic field (work-model fields — frames, evals, wall — may differ).
fn assert_rf_equals_exhaustive(
    outcome: &perple_convert::PerpetualOutcome,
    bufs: &[&[u64]],
    n: u64,
    ctx: &str,
) -> (CountResult, CountResult) {
    let req = CountRequest::new(bufs, n);
    let rf = RfCounter::single(outcome).count(&req);
    let exh = ExhaustiveCounter::single(outcome).count(&req);
    assert_eq!(rf.counts, exh.counts, "{ctx}: counts");
    assert_eq!(rf.truncated, exh.truncated, "{ctx}: truncated");
    assert_eq!(rf.budget_expired, exh.budget_expired, "{ctx}: budget");
    (rf, exh)
}

#[test]
fn every_corpus_target_counts_identically_without_fallback() {
    // The production path: audit, campaigns, and benches count the single
    // target outcome, so the polynomial fragment must carry every one.
    let n = 60u64;
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("convertible suite test");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xD1FF));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let (rf, _) = assert_rf_equals_exhaustive(&conv.target_exhaustive, &bufs, n, test.name());
        assert!(
            !rf.downgraded,
            "{}: target must take the polynomial path",
            test.name()
        );
    }
}

#[test]
fn every_corpus_outcome_counts_identically_fallback_pinned() {
    // Variety analysis counts every outcome; outcomes outside the fragment
    // must still be exact (via the recorded fallback), and the set of
    // tests needing one is pinned so fragment regressions are loud.
    let n = 24u64;
    let mut fell_back = Vec::new();
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("convertible suite test");
        let all = conv.all_outcomes(&test).expect("outcomes");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xA11));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let mut needed_fallback = false;
        for (o, _) in &all {
            let ctx = format!("{}/{}", test.name(), o.label());
            let (rf, _) = assert_rf_equals_exhaustive(o, &bufs, n, &ctx);
            needed_fallback |= rf.downgraded;
        }
        if needed_fallback {
            fell_back.push(test.name().to_owned());
        }
    }
    fell_back.sort_unstable();
    assert_eq!(fell_back, FALLBACK_TESTS, "the rf fragment moved");
}

#[test]
fn worker_counts_change_no_field_of_the_rf_result() {
    for name in ["sb", "wrc", "podwr001", "iriw"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let n = 48u64;
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x33));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let serial = RfCounter::single(&conv.target_exhaustive).count(&CountRequest::new(&bufs, n));
        for w in WORKERS {
            let par = RfCounter::single(&conv.target_exhaustive)
                .count(&CountRequest::new(&bufs, n).with_workers(w));
            let ctx = format!("{name}, workers {w}");
            assert_eq!(serial.counts, par.counts, "{ctx}: counts");
            assert_eq!(serial.frames_examined, par.frames_examined, "{ctx}: frames");
            assert_eq!(serial.evals, par.evals, "{ctx}: evals");
            assert_eq!(serial.truncated, par.truncated, "{ctx}: truncated");
            assert_eq!(serial.downgraded, par.downgraded, "{ctx}: downgraded");
        }
    }
}

#[test]
fn all_seeds_of_a_campaign_spec_agree() {
    // The seed axis of a campaign spec: every (test, seed) item the spec
    // `tests = sb, mp, amd3; seeds = 1..6` expands to must count
    // identically under both backends.
    let n = 80u64;
    for name in ["sb", "mp", "amd3"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        for seed in 1u64..6 {
            let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
            let run = runner.run(&conv.perpetual, n);
            let bufs = run.bufs();
            let ctx = format!("{name}#{seed}");
            let (rf, _) = assert_rf_equals_exhaustive(&conv.target_exhaustive, &bufs, n, &ctx);
            assert!(!rf.downgraded, "{ctx}");
        }
    }
}

#[test]
fn fault_injected_buffers_count_identically() {
    // Corrupted loads produce values no store sequence explains; the rf
    // compiler's decode guards must agree with eval_frame on every one.
    let n = 60u64;
    let plan = FaultPlan::parse("corrupt@t0:0..60").expect("fault plan");
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("converts");
        let mut runner = PerpleRunner::new(
            SimConfig::default()
                .with_seed(0xBAD)
                .with_fault_plan(plan.clone()),
        );
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        assert_rf_equals_exhaustive(&conv.target_exhaustive, &bufs, n, test.name());
    }
}

#[test]
fn prop_random_schedules_and_programs_agree() {
    // Satellite 1a: random (test, seed, n) triples through the real
    // machine; rf must match exhaustive on the target of each.
    let tests = suite::convertible();
    run_cases(24, |g| {
        let test = g.choose(&tests).clone();
        let n = g.range_u64(8, 48);
        let seed = g.u64();
        let conv = Conversion::convert(&test).expect("converts");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let ctx = format!("{} seed {seed:#x} n {n}", test.name());
        assert_rf_equals_exhaustive(&conv.target_exhaustive, &bufs, n, &ctx);
    });
}

#[test]
fn prop_adversarial_random_buffers_agree() {
    // Satellite 1b: raw random buffers — values the machine could never
    // produce (non-sequence garbage, huge values, zeros) — exercise every
    // decode-failure branch of the rf compiler.
    let tests = suite::convertible();
    run_cases(24, |g| {
        let test = g.choose(&tests).clone();
        let n = g.range_u64(1, 24);
        let conv = Conversion::convert(&test).expect("converts");
        let perp = &conv.perpetual;
        let bufs: Vec<Vec<u64>> = perp
            .load_threads()
            .iter()
            .map(|t| {
                let rpi = perp.reads_per_thread()[t.index()] as u64;
                (0..n * rpi)
                    .map(|_| match g.below(4) {
                        0 => 0,
                        1 => g.u64(),
                        _ => g.range_u64(0, 3 * n + 7),
                    })
                    .collect()
            })
            .collect();
        let views: Vec<&[u64]> = bufs.iter().map(Vec::as_slice).collect();
        let ctx = format!("{} n {n}", test.name());
        assert_rf_equals_exhaustive(&conv.target_exhaustive, &views, n, &ctx);
    });
}

#[test]
fn prop_rf_is_deterministic_across_reruns_and_worker_counts() {
    // Satellite 1c: the same request is a pure function — rerunning it, at
    // any worker count, reproduces every field.
    let tests = suite::convertible();
    run_cases(12, |g| {
        let test = g.choose(&tests).clone();
        let n = g.range_u64(8, 40);
        let conv = Conversion::convert(&test).expect("converts");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(g.u64()));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        let first = RfCounter::single(&conv.target_exhaustive).count(&req);
        let again = RfCounter::single(&conv.target_exhaustive).count(&req);
        assert_eq!(first.counts, again.counts);
        assert_eq!(first.frames_examined, again.frames_examined);
        let w = *g.choose(&[2usize, 3, 7, 16]);
        let wide = RfCounter::single(&conv.target_exhaustive).count(&req.with_workers(w));
        assert_eq!(first.counts, wide.counts, "{} workers {w}", test.name());
        assert_eq!(first.evals, wide.evals, "{} workers {w}", test.name());
    });
}

#[test]
fn boundary_single_iteration_counts_identically_corpus_wide() {
    // N = 1: one frame per coordinate, every interval degenerate.
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("converts");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x1));
        let run = runner.run(&conv.perpetual, 1);
        let bufs = run.bufs();
        assert_rf_equals_exhaustive(&conv.target_exhaustive, &bufs, 1, test.name());
    }
}

#[test]
fn boundary_single_load_thread_tests_are_linear_and_exact() {
    // T_L = 1 tests have no cross-coordinate atoms at all — the rf plan is
    // pure unaries, and its work model equals one pass over N.
    let singles: Vec<_> = suite::convertible()
        .into_iter()
        .filter(|t| {
            Conversion::convert(t)
                .map(|c| c.perpetual.load_thread_count() == 1)
                .unwrap_or(false)
        })
        .collect();
    assert!(!singles.is_empty(), "the corpus has T_L = 1 tests");
    let n = 200u64;
    for test in singles {
        let conv = Conversion::convert(&test).expect("converts");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x71));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let (rf, exh) = assert_rf_equals_exhaustive(&conv.target_exhaustive, &bufs, n, test.name());
        assert!(!rf.downgraded, "{}", test.name());
        assert_eq!(
            exh.frames_examined,
            n,
            "{}: T_L = 1 scans N frames",
            test.name()
        );
        assert!(
            rf.frames_examined <= n,
            "{}: rf work is at most N",
            test.name()
        );
    }
}

#[test]
fn boundary_heuristic_never_exceeds_the_exact_backends_suite_wide() {
    // The paper's containment: COUNTH finds a subset of what COUNT finds,
    // and rf == COUNT exactly, so `heuristic <= rf == exhaustive`.
    let n = 100u64;
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("converts");
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x0D3));
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        let heur = HeuristicCounter::single(&conv.target_heuristic).count(&req);
        let (rf, exh) = assert_rf_equals_exhaustive(&conv.target_exhaustive, &bufs, n, test.name());
        assert!(
            heur.counts[0] <= rf.counts[0],
            "{}: heuristic {} > rf {}",
            test.name(),
            heur.counts[0],
            rf.counts[0]
        );
        assert_eq!(rf.counts[0], exh.counts[0], "{}", test.name());
    }
}

#[test]
fn boundary_budget_expiry_yields_a_provable_iteration_prefix() {
    // Budget expiry on the rf path is admission-based: the result equals
    // an unbudgeted rf count at the admitted prefix length — a provable
    // partial answer, not an arbitrary truncation.
    let test = suite::sb();
    let conv = Conversion::convert(&test).expect("converts");
    let n = 3_000u64;
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xB7D));
    let run = runner.run(&conv.perpetual, n);
    let bufs = run.bufs();

    let budget = Budget::with_poll_limit(1);
    let capped = RfCounter::single(&conv.target_exhaustive)
        .count(&CountRequest::new(&bufs, n).with_budget(&budget));
    assert!(
        capped.budget_expired,
        "one poll cannot admit 3000 iterations"
    );
    assert!(!capped.truncated, "rf never reports frame truncation");

    // The prefix the budget admitted (one 1024-iteration block) must count
    // exactly like an honest run of that length.
    let m = 1_024u64;
    let prefix_bufs: Vec<Vec<u64>> = bufs.iter().map(|b| b[..m as usize].to_vec()).collect();
    let prefix_views: Vec<&[u64]> = prefix_bufs.iter().map(Vec::as_slice).collect();
    let prefix =
        RfCounter::single(&conv.target_exhaustive).count(&CountRequest::new(&prefix_views, m));
    assert!(!prefix.budget_expired);
    assert_eq!(
        capped.counts, prefix.counts,
        "budgeted == unbudgeted prefix"
    );
    let exact_prefix = ExhaustiveCounter::single(&conv.target_exhaustive)
        .count(&CountRequest::new(&prefix_views, m));
    assert_eq!(
        capped.counts, exact_prefix.counts,
        "and the prefix is exact"
    );
}
