//! Integration checks on the Converter's textual artifacts (per-thread
//! assembly, C counter sources, parameter files) across the whole suite.

use perple::Conversion;
use perple_convert::codegen;
use perple_model::suite;

#[test]
fn every_convertible_test_emits_complete_artifacts() {
    for test in suite::convertible() {
        let conv = Conversion::convert(&test).expect("converts");
        let asm = codegen::emit_thread_asm(&conv.perpetual);
        assert_eq!(asm.len(), test.thread_count(), "{}", test.name());
        for (t, file) in asm.iter().enumerate() {
            assert!(
                file.contains(&format!("perp_thread_{t}")),
                "{}: thread {t} missing entry point",
                test.name()
            );
            assert!(file.contains(".loop:"), "{}", test.name());
            assert!(file.contains("ret"), "{}", test.name());
        }

        let params = codegen::emit_params(&conv.perpetual);
        for (t, r) in test.reads_per_thread().iter().enumerate() {
            assert!(
                params.contains(&format!("t{t}_reads = {r}")),
                "{}: params missing t{t}_reads",
                test.name()
            );
        }

        let all = conv.all_outcomes(&test).expect("outcomes convert");
        let outcomes: Vec<_> = all.iter().map(|(o, _)| o.clone()).collect();
        let heuristics: Vec<_> = all.iter().map(|(_, h)| h.clone()).collect();
        let count_c = codegen::emit_count_c(&conv.perpetual, &outcomes);
        let counth_c = codegen::emit_counth_c(&conv.perpetual, &heuristics);
        assert!(count_c.contains("void COUNT("), "{}", test.name());
        assert!(counth_c.contains("void COUNTH("), "{}", test.name());
        // One nested loop per load-performing thread in COUNT.
        for p in 0..test.load_thread_count() {
            assert!(
                count_c.contains(&format!("for (uint64_t n{p} = 0; n{p} < N; n{p}++)")),
                "{}: COUNT missing loop over n{p}",
                test.name()
            );
        }
        // One p_out_h function per outcome in COUNTH.
        for o in 0..heuristics.len() {
            assert!(
                counth_c.contains(&format!("p_out_h_{o}")),
                "{}: COUNTH missing p_out_h_{o}",
                test.name()
            );
        }
        // Balanced braces: cheap well-formedness check on the C output.
        for (name, src) in [("COUNT", &count_c), ("COUNTH", &counth_c)] {
            let open = src.matches('{').count();
            let close = src.matches('}').count();
            assert_eq!(open, close, "{}: unbalanced braces in {name}", test.name());
        }
    }
}

#[test]
fn fenced_tests_keep_fences_in_assembly() {
    for name in ["amd5", "mp+fences", "safe007", "safe027"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("converts");
        let asm = codegen::emit_thread_asm(&conv.perpetual).join("\n");
        assert!(asm.contains("mfence"), "{name}: fence lost in conversion");
    }
}

#[test]
fn locked_exchanges_appear_in_assembly() {
    let test = suite::amd10();
    let conv = Conversion::convert(&test).expect("converts");
    let asm = codegen::emit_thread_asm(&conv.perpetual).join("\n");
    assert!(asm.contains("xchg ["));
}

#[test]
fn existential_scans_only_for_store_only_threads() {
    // mp has a store-only producer: its COUNT must scan an existential
    // index; sb has none: no scan.
    let mp = suite::mp();
    let conv_mp = Conversion::convert(&mp).expect("converts");
    let c_mp = codegen::emit_count_c(
        &conv_mp.perpetual,
        std::slice::from_ref(&conv_mp.target_exhaustive),
    );
    assert!(c_mp.contains("m0 = 0; m0 < N && !hit"));

    let sb = suite::sb();
    let conv_sb = Conversion::convert(&sb).expect("converts");
    let c_sb = codegen::emit_count_c(
        &conv_sb.perpetual,
        std::slice::from_ref(&conv_sb.target_exhaustive),
    );
    assert!(!c_sb.contains("!hit"));
}
